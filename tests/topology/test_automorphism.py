"""Automorphisms of butterflies (Lemmas 2.1 and 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    butterfly,
    cascade_xor_permutation,
    column_xor_permutation,
    edge_pair_automorphism,
    is_automorphism,
    level_reversal_permutation,
    level_rotation_permutation,
    wrapped_butterfly,
)


class TestLevelReversal:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_lemma_21(self, n):
        bf = butterfly(n)
        perm = level_reversal_permutation(bf)
        assert is_automorphism(bf, perm)
        for i in range(bf.lg + 1):
            assert set((perm[bf.level(i)] // bf.n).tolist()) == {bf.lg - i}

    def test_involution(self, b8):
        perm = level_reversal_permutation(b8)
        assert np.array_equal(perm[perm], np.arange(b8.num_nodes))

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            level_reversal_permutation(w8)


class TestColumnXor:
    @given(st.sampled_from([4, 8, 16]), st.booleans(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_always_automorphism(self, n, wrap, data):
        bf = wrapped_butterfly(n) if wrap else butterfly(n)
        c = data.draw(st.integers(0, n - 1))
        perm = column_xor_permutation(bf, c)
        assert is_automorphism(bf, perm)

    def test_transitive_on_columns(self, b8):
        """Any column maps to any other: Lemma 2.2's node transitivity."""
        for target in range(8):
            perm = column_xor_permutation(b8, 0 ^ target)
            assert perm[b8.node(0, 1)] == b8.node(target, 1)

    def test_rejects_out_of_range(self, b8):
        with pytest.raises(ValueError):
            column_xor_permutation(b8, 8)


class TestCascadeXor:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_cascades_are_automorphisms(self, data):
        n = data.draw(st.sampled_from([4, 8, 16]))
        bf = butterfly(n)
        base = data.draw(st.integers(0, n - 1))
        flips = data.draw(st.lists(st.booleans(), min_size=bf.lg, max_size=bf.lg))
        perm = cascade_xor_permutation(bf, base, flips)
        assert is_automorphism(bf, perm)

    def test_flip_swaps_straight_and_cross(self, b8):
        """Flipping at step 1 exchanges the straight and cross edges
        between levels 0 and 1."""
        perm = cascade_xor_permutation(b8, 0, [True, False, False])
        u, v = b8.node(0, 0), b8.node(0, 1)  # a straight edge
        assert perm[u] == b8.node(0, 0)
        assert perm[v] == b8.node(4, 1)  # cross image

    def test_wrong_flip_count(self, b8):
        with pytest.raises(ValueError):
            cascade_xor_permutation(b8, 0, [True])

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            cascade_xor_permutation(w8, 0, [True] * w8.lg)


class TestLevelRotation:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_rotation_is_automorphism(self, n):
        wf = wrapped_butterfly(n)
        for shift in range(wf.lg):
            assert is_automorphism(wf, level_rotation_permutation(wf, shift))

    def test_full_rotation_is_identity(self, w8):
        perm = level_rotation_permutation(w8, w8.lg)
        assert np.array_equal(perm, np.arange(w8.num_nodes))

    def test_vertex_transitivity(self, w8):
        """Rotation + column xor reach every node from <0, 0> — the symmetry
        used to renumber levels in Lemma 3.2's proof."""
        reachable = set()
        for shift in range(w8.lg):
            rot = level_rotation_permutation(w8, shift)
            for c in range(w8.n):
                xor = column_xor_permutation(w8, c)
                reachable.add(int(xor[rot[w8.node(0, 0)]]))
        assert reachable == set(range(w8.num_nodes))

    def test_rejects_plain_butterfly(self, b8):
        with pytest.raises(ValueError):
            level_rotation_permutation(b8, 1)


class TestEdgePairAutomorphism:
    def test_lemma_22_all_pairs_level0(self, b4):
        e = b4.edges
        lv = e[:, 0] // b4.n
        level0 = e[lv == 0]
        for a in level0:
            for b in level0:
                perm = edge_pair_automorphism(
                    b4, int(a[0]), int(a[1]), int(b[0]), int(b[1])
                )
                assert is_automorphism(b4, perm)
                assert perm[a[0]] == b[0] and perm[a[1]] == b[1]

    def test_mismatched_levels_rejected(self, b8):
        with pytest.raises(ValueError):
            edge_pair_automorphism(
                b8, b8.node(0, 0), b8.node(0, 1), b8.node(0, 1), b8.node(0, 2)
            )

    def test_non_edges_rejected(self, b8):
        with pytest.raises(ValueError):
            edge_pair_automorphism(
                b8, b8.node(0, 0), b8.node(3, 1), b8.node(0, 0), b8.node(0, 1)
            )
