"""Down-trees and up-trees (Section 4 definitions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import butterfly, down_tree, up_tree, wrapped_butterfly


class TestWrappedTrees:
    def test_down_tree_shape(self, w8):
        t = down_tree(w8, 0, 0)
        assert t.depth == w8.lg
        assert [len(d) for d in t.depths] == [1, 2, 4, 8]
        # Leaves return to the root's level (mod log n).
        assert (w8.level_of(t.leaves) == 0).all()

    def test_up_tree_shape(self, w8):
        t = up_tree(w8, 3, 1)
        assert t.depth == w8.lg
        assert (w8.level_of(t.leaves) == 1).all()

    def test_levels_advance_mod_logn(self, w8):
        t = down_tree(w8, 2, 2)
        for j, nodes in enumerate(t.depths):
            assert (w8.level_of(nodes) == (2 + j) % w8.lg).all()

    def test_up_levels_recede(self, w8):
        t = up_tree(w8, 2, 2)
        for j, nodes in enumerate(t.depths):
            assert (w8.level_of(nodes) == (2 - j) % w8.lg).all()

    def test_leaves_distinct_columns(self, w8):
        t = down_tree(w8, 5, 1)
        assert len(np.unique(w8.column_of(t.leaves))) == w8.n


class TestButterflyTrees:
    def test_down_tree_natural_depth(self, b8):
        t = down_tree(b8, 0, 1)
        assert t.depth == b8.lg - 1
        assert (b8.level_of(t.leaves) == b8.lg).all()

    def test_up_tree_natural_depth(self, b8):
        t = up_tree(b8, 0, 2)
        assert t.depth == 2
        assert (b8.level_of(t.leaves) == 0).all()

    def test_depth_cap(self, b8):
        with pytest.raises(ValueError):
            down_tree(b8, 0, 1, depth=3)
        with pytest.raises(ValueError):
            up_tree(b8, 0, 1, depth=2)

    def test_partial_depth(self, b8):
        t = down_tree(b8, 0, 0, depth=2)
        assert t.depth == 2
        assert len(t.leaves) == 4


class TestTreeEdges:
    @given(
        st.sampled_from(["b8", "w8", "b16"]),
        st.booleans(),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_tree_edges_are_network_edges(self, which, down, data):
        bf = {"b8": butterfly(8), "w8": wrapped_butterfly(8), "b16": butterfly(16)}[which]
        w = data.draw(st.integers(0, bf.n - 1))
        i = data.draw(st.integers(0, bf.num_levels - 1))
        t = down_tree(bf, w, i) if down else up_tree(bf, w, i)
        for p, c in t.all_edges():
            assert bf.has_edge(int(p), int(c))

    def test_parent_child_convention(self, w8):
        """Child at position c has its parent at position c // 2; even child
        is the straight edge, odd child the cross edge."""
        t = down_tree(w8, 0, 0)
        parents, children = t.edges_at(1)
        assert parents.tolist() == [t.depths[0][0]] * 2
        for j in range(2, t.depth + 1):
            parents, children = t.edges_at(j)
            assert np.array_equal(parents, np.repeat(t.depths[j - 1], 2))
            # Even children keep the parent's column (straight edges).
            assert np.array_equal(
                w8.column_of(children[0::2]), w8.column_of(t.depths[j - 1])
            )

    def test_edges_at_bounds(self, w8):
        t = down_tree(w8, 0, 0)
        with pytest.raises(ValueError):
            t.edges_at(0)
        with pytest.raises(ValueError):
            t.edges_at(t.depth + 1)

    def test_all_edges_count(self, w8):
        t = down_tree(w8, 0, 0)
        assert len(t.all_edges()) == 2 * w8.n - 2  # complete binary tree
