"""Lemma 2.4: the sub-butterfly decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    butterfly,
    component_columns,
    component_isomorphism,
    component_key,
    component_of,
    level_range_components,
)


class TestComponentCounts:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_lemma_24_component_count(self, n):
        bf = butterfly(n)
        for lo in range(bf.lg + 1):
            for hi in range(lo, bf.lg + 1):
                comps = level_range_components(bf, lo, hi)
                assert len(comps) == n >> (hi - lo)

    def test_components_partition_the_range(self, b8):
        comps = level_range_components(b8, 1, 2)
        allnodes = np.concatenate([c.nodes for c in comps])
        expected = np.concatenate([b8.level(1), b8.level(2)])
        assert sorted(allnodes.tolist()) == sorted(expected.tolist())

    def test_components_are_connected_and_disjoint(self, b8):
        comps = level_range_components(b8, 1, 3)
        seen = set()
        for comp in comps:
            assert not (seen & set(comp.nodes.tolist()))
            seen.update(comp.nodes.tolist())
            sub = b8.subgraph(comp.nodes)
            assert len(sub.connected_components()) == 1


class TestKeys:
    def test_key_round_trip(self, b16):
        lo, hi = 1, 3
        for w in range(16):
            p, s = component_key(b16, w, lo, hi)
            cols = component_columns(b16, p, s, lo, hi)
            assert w in cols.tolist()

    def test_component_of(self, b16):
        comp = component_of(b16, 5, 1, 3)
        assert 5 in comp.columns.tolist()
        assert comp.lo == 1 and comp.hi == 3

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            level_range_components(w8, 0, 1)

    def test_rejects_bad_range(self, b8):
        with pytest.raises(ValueError):
            level_range_components(b8, 2, 1)
        with pytest.raises(ValueError):
            level_range_components(b8, 0, 4)


class TestIsomorphism:
    @given(st.sampled_from([4, 8, 16]), st.data())
    @settings(max_examples=25, deadline=None)
    def test_components_isomorphic_to_butterfly(self, n, data):
        """Lemma 2.4: each component of Bn[i,j] is isomorphic to B_{2^{j-i}}."""
        bf = butterfly(n)
        lo = data.draw(st.integers(0, bf.lg - 1))
        hi = data.draw(st.integers(lo + 1, bf.lg))
        comp = level_range_components(bf, lo, hi)[
            data.draw(st.integers(0, (n >> (hi - lo)) - 1))
        ]
        small, mapping = component_isomorphism(bf, comp)
        assert len(mapping) == small.num_nodes
        sub = bf.subgraph(comp.nodes)
        assert sub.num_edges == small.num_edges
        for u, v in bf.edges:
            if int(u) in mapping and int(v) in mapping:
                assert small.has_edge(mapping[int(u)], mapping[int(v)])

    def test_levels_line_up(self, b8):
        """The k-th level of each component sits inside level i+k of Bn."""
        comp = level_range_components(b8, 1, 3)[0]
        for k in range(comp.dimension + 1):
            lvl = comp.level_nodes(k)
            assert (b8.level_of(lvl) == 1 + k).all()

    def test_zero_dimensional_rejected(self, b8):
        comp = level_range_components(b8, 1, 1)[0]
        with pytest.raises(ValueError):
            component_isomorphism(b8, comp)

    def test_level_nodes_bounds(self, b8):
        comp = level_range_components(b8, 1, 2)[0]
        with pytest.raises(ValueError):
            comp.level_nodes(5)
