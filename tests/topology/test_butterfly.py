"""Butterfly networks Bn and Wn (Section 1.1)."""

import numpy as np
import pytest

from repro.topology import Butterfly, butterfly, wrapped_butterfly
from repro.topology.labels import flip_bit


class TestConstruction:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_bn_counts(self, n):
        bf = butterfly(n)
        lg = bf.lg
        assert bf.num_nodes == n * (lg + 1)  # the paper's N
        assert bf.num_edges == 2 * n * lg
        assert bf.num_levels == lg + 1

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_wn_counts(self, n):
        bf = wrapped_butterfly(n)
        assert bf.num_nodes == n * bf.lg
        assert bf.num_edges == 2 * n * bf.lg
        assert (bf.degrees == 4).all()  # Wn is 4-regular

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            butterfly(6)
        with pytest.raises(ValueError):
            butterfly(0)

    def test_wraparound_needs_two_dims(self):
        with pytest.raises(ValueError):
            wrapped_butterfly(2)

    def test_w4_has_parallel_edges(self, w4):
        # Identifying levels 0 and 2 of B4 doubles the straight edges.
        assert not w4.is_simple
        assert w4.num_edges == 16

    def test_w8_is_simple(self, w8):
        assert w8.is_simple


class TestIndexing:
    def test_node_level_major(self, b8):
        assert b8.node(3, 0) == 3
        assert b8.node(0, 1) == 8
        assert b8.node(7, 3) == 31

    def test_label_round_trip(self, b8):
        for w in range(8):
            for i in range(4):
                idx = b8.node(w, i)
                assert b8.labels[idx] == (w, i)
                assert b8.level_of(idx) == i
                assert b8.column_of(idx) == w

    def test_wrapped_level_reduction(self, w8):
        assert w8.node(5, 3) == w8.node(5, 0)

    def test_bounds(self, b8):
        with pytest.raises(ValueError):
            b8.node(8, 0)
        with pytest.raises(ValueError):
            b8.node(0, 4)

    def test_level_sets(self, b8):
        lvl = b8.level(2)
        assert len(lvl) == 8
        assert (b8.level_of(lvl) == 2).all()

    def test_column_sets(self, b8):
        col = b8.column(5)
        assert len(col) == 4
        assert (b8.column_of(col) == 5).all()

    def test_inputs_outputs(self, b8):
        assert (b8.level_of(b8.inputs()) == 0).all()
        assert (b8.level_of(b8.outputs()) == 3).all()

    def test_wn_outputs_are_inputs(self, w8):
        assert np.array_equal(w8.outputs(), w8.inputs())


class TestAdjacency:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_bn_edge_rule(self, n):
        """<w,i> ~ <w',i+1> iff w = w' or they differ in bit position i+1."""
        bf = butterfly(n)
        for w in range(n):
            for i in range(bf.lg):
                u = bf.node(w, i)
                assert bf.has_edge(u, bf.node(w, i + 1))
                assert bf.has_edge(u, bf.node(flip_bit(w, i + 1, bf.lg), i + 1))
                # No other cross edges at this step.
                for pos in range(1, bf.lg + 1):
                    if pos != i + 1:
                        assert not bf.has_edge(u, bf.node(flip_bit(w, pos, bf.lg), i + 1))

    def test_bn_degree_profile(self, b8):
        lv = b8.level_of(np.arange(b8.num_nodes))
        deg = b8.degrees
        assert (deg[(lv == 0) | (lv == b8.lg)] == 2).all()
        assert (deg[(lv > 0) & (lv < b8.lg)] == 4).all()

    def test_wn_wrap_edge_rule(self, w8):
        # Level log n - 1 connects to level 0, flipping bit log n or nothing.
        lg = w8.lg
        for w in range(8):
            u = w8.node(w, lg - 1)
            assert w8.has_edge(u, w8.node(w, 0))
            assert w8.has_edge(u, w8.node(flip_bit(w, lg, lg), 0))

    def test_no_intra_level_edges(self, b8, w8):
        for bf in (b8, w8):
            lv = bf.level_of(np.arange(bf.num_nodes))
            e = bf.edges
            assert (lv[e[:, 0]] != lv[e[:, 1]]).all()


class TestLayers:
    def test_bn_layers(self, b8):
        layers = b8.layers()
        assert len(layers) == 4
        assert not b8.cyclic

    def test_wn_layers_cyclic(self, w8):
        assert len(w8.layers()) == 3
        assert w8.cyclic

    def test_layers_partition(self, b8):
        allnodes = np.concatenate(b8.layers())
        assert sorted(allnodes.tolist()) == list(range(b8.num_nodes))
