"""ASCII rendering (Figure 1 regeneration)."""

from repro.topology import butterfly, wrapped_butterfly
from repro.topology.render import ascii_butterfly


class TestRender:
    def test_b8_shape(self):
        art = ascii_butterfly(butterfly(8))
        lines = art.splitlines()
        # Header, caption, 4 level rows, 3 cross-pattern rows.
        assert sum(1 for l in lines if l.strip().startswith("level")) == 4
        assert sum(1 for l in lines if l.strip().startswith("bit")) == 3

    def test_column_labels_binary(self):
        art = ascii_butterfly(butterfly(8))
        assert "000" in art and "111" in art

    def test_node_count_in_art(self):
        art = ascii_butterfly(butterfly(8))
        level_rows = [l for l in art.splitlines() if l.strip().startswith("level")]
        assert sum(l.count("o") for l in level_rows) == 32

    def test_wrapped_has_wrap_stage(self):
        art = ascii_butterfly(wrapped_butterfly(8))
        lines = art.splitlines()
        # Wn: 3 level rows and 3 edge stages (including the wrap).
        assert sum(1 for l in lines if l.strip().startswith("level")) == 3
        assert sum(1 for l in lines if l.strip().startswith("bit")) == 3

    def test_bit_positions_in_order(self):
        art = ascii_butterfly(butterfly(8))
        assert art.index("bit 1") < art.index("bit 2") < art.index("bit 3")
