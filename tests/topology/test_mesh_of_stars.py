"""The mesh of stars (Section 2.1)."""

import pytest

from repro.topology import mesh_of_stars


class TestConstruction:
    @pytest.mark.parametrize("j,k", [(1, 1), (2, 3), (4, 4), (8, 2)])
    def test_counts(self, j, k):
        mos = mesh_of_stars(j, k)
        assert mos.num_nodes == j + j * k + k
        assert mos.num_edges == 2 * j * k  # every K_{j,k} edge subdivided

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            mesh_of_stars(0, 3)

    def test_level_sizes(self):
        mos = mesh_of_stars(3, 5)
        assert len(mos.m1()) == 3
        assert len(mos.m2()) == 15
        assert len(mos.m3()) == 5

    def test_degrees(self):
        mos = mesh_of_stars(3, 5)
        assert (mos.degrees[mos.m1()] == 5).all()
        assert (mos.degrees[mos.m2()] == 2).all()
        assert (mos.degrees[mos.m3()] == 3).all()


class TestAdjacency:
    def test_middle_connects_its_endpoints_only(self):
        mos = mesh_of_stars(3, 4)
        for a in range(3):
            for b in range(4):
                mid = mos.m2_node(a, b)
                assert mos.has_edge(mos.m1_node(a), mid)
                assert mos.has_edge(mid, mos.m3_node(b))
                assert not mos.has_edge(mos.m1_node(a), mos.m3_node(b))
                for a2 in range(3):
                    if a2 != a:
                        assert not mos.has_edge(mos.m1_node(a2), mid)

    def test_monotone_paths_length_two(self):
        """Every M1 node reaches every M3 node by a unique length-2 path."""
        mos = mesh_of_stars(4, 4)
        for a in range(4):
            nbrs = set(mos.neighbors(mos.m1_node(a)).tolist())
            reach = set()
            for mid in nbrs:
                reach.update(mos.neighbors(int(mid)).tolist())
            assert set(mos.m3().tolist()) <= reach

    def test_node_index_bounds(self):
        mos = mesh_of_stars(2, 2)
        with pytest.raises(ValueError):
            mos.m1_node(2)
        with pytest.raises(ValueError):
            mos.m2_node(0, 2)
        with pytest.raises(ValueError):
            mos.m3_node(-1)


class TestLayers:
    def test_layers(self):
        mos = mesh_of_stars(3, 4)
        layers = mos.layers()
        assert [len(l) for l in layers] == [3, 12, 4]
        assert not mos.cyclic
