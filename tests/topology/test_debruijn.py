"""De Bruijn and shuffle-exchange graphs (Section 1.5)."""

import pytest

from repro.topology import de_bruijn, shuffle_exchange


class TestDeBruijn:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_connected(self, d):
        g = de_bruijn(d)
        assert g.num_nodes == 1 << d
        assert len(g.connected_components()) == 1

    def test_degree_bound(self):
        g = de_bruijn(4)
        assert g.degrees.max() <= 4  # bounded-degree hypercube variant

    def test_no_self_loops_kept(self):
        g = de_bruijn(3)
        assert (g.edges[:, 0] != g.edges[:, 1]).all()

    def test_shift_adjacency(self):
        g = de_bruijn(3)
        # 011 -> 110 and 111 are shift successors.
        assert g.has_edge(0b011, 0b110)
        assert g.has_edge(0b011, 0b111)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            de_bruijn(0)


class TestShuffleExchange:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_connected(self, d):
        g = shuffle_exchange(d)
        assert len(g.connected_components()) == 1

    def test_exchange_edges(self):
        g = shuffle_exchange(3)
        assert g.has_edge(0b010, 0b011)

    def test_shuffle_edges(self):
        g = shuffle_exchange(3)
        assert g.has_edge(0b001, 0b010)  # rotation
        assert g.has_edge(0b100, 0b001)

    def test_degree_bound(self):
        assert shuffle_exchange(4).degrees.max() <= 3
