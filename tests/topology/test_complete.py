"""Complete-graph guests (Section 1.4)."""

import pytest

from repro.topology import (
    complete_graph,
    complete_bipartite,
    complete_bisection_width,
    complete_edge_expansion,
    doubled_complete_graph,
)


class TestCompleteGraph:
    @pytest.mark.parametrize("n", [1, 2, 5, 10])
    def test_counts(self, n):
        g = complete_graph(n)
        assert g.num_nodes == n
        assert g.num_edges == n * (n - 1) // 2

    def test_doubled(self):
        g = doubled_complete_graph(5)
        assert g.num_edges == 20
        assert not g.is_simple

    def test_bisection_width_formula(self):
        # BW(K_N) = floor(N/2) ceil(N/2); the paper's N^2/4 for even N.
        assert complete_bisection_width(4) == 4
        assert complete_bisection_width(5) == 6
        assert complete_bisection_width(4, doubled=True) == 8

    def test_bisection_width_matches_enumeration(self):
        from repro.cuts import cut_profile

        for n in (3, 4, 5, 6):
            prof = cut_profile(complete_graph(n))
            assert prof.bisection_width() == complete_bisection_width(n)

    def test_edge_expansion_formula(self):
        # EE(K_N, k) = k (N - k).
        from repro.cuts import cut_profile

        n = 6
        prof = cut_profile(complete_graph(n))
        for k in range(n + 1):
            assert prof.values[k] == complete_edge_expansion(n, k)

    def test_edge_expansion_bounds_check(self):
        with pytest.raises(ValueError):
            complete_edge_expansion(4, 5)


class TestCompleteBipartite:
    def test_counts(self):
        g = complete_bipartite(3, 4)
        assert g.num_nodes == 7
        assert g.num_edges == 12

    def test_labels(self):
        g = complete_bipartite(2, 2)
        assert g.has_node(("L", 0)) and g.has_node(("R", 1))
        assert g.has_edge(g.index_of(("L", 0)), g.index_of(("R", 1)))

    def test_side_bisection_capacity(self):
        """A cut bisecting one side of K_{n,n} has capacity >= n^2/2 —
        the counting fact in Lemma 3.1."""
        from repro.cuts import cut_profile
        import numpy as np

        n = 4
        g = complete_bipartite(n, n)
        left = np.arange(n)
        prof = cut_profile(g, counted=left)
        assert prof.bisection_width() == n * n // 2
