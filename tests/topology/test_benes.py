"""Beneš networks (Section 1.5)."""

import pytest

from repro.topology import benes
from repro.topology.labels import flip_bit


class TestConstruction:
    @pytest.mark.parametrize("m", [0, 1, 2, 3, 4])
    def test_counts(self, m):
        bn = benes(m)
        assert bn.num_nodes == (2 * m + 1) << m
        assert bn.num_edges == 2 * (2 * m) << m
        assert bn.num_ports == 2 << m

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            benes(-1)

    def test_flip_positions_mirror(self):
        bn = benes(3)
        assert [bn.flip_position(l) for l in range(6)] == [1, 2, 3, 3, 2, 1]

    def test_flip_position_bounds(self):
        with pytest.raises(ValueError):
            benes(2).flip_position(4)


class TestStructure:
    def test_back_to_back_butterflies(self):
        """Each half of the Beneš network is a butterfly."""
        from repro.topology import butterfly
        import numpy as np

        m = 3
        bn = benes(m)
        half = butterfly(1 << m)
        fwd = np.concatenate([bn.level(l) for l in range(m + 1)])
        sub = bn.subgraph(fwd)
        assert sub.num_edges == half.num_edges
        bwd = np.concatenate([bn.level(l) for l in range(m, 2 * m + 1)])
        sub = bn.subgraph(bwd)
        assert sub.num_edges == half.num_edges

    def test_edge_rule(self):
        bn = benes(3)
        m = bn.m
        for l in range(2 * m):
            p = bn.flip_position(l)
            for w in range(bn.n):
                assert bn.has_edge(bn.node(w, l), bn.node(w, l + 1))
                assert bn.has_edge(bn.node(w, l), bn.node(flip_bit(w, p, m), l + 1))

    def test_middle_splits_into_two_sub_benes(self):
        """Levels 1..2m-1 split by the first bit into two Beneš(m-1)'s —
        the recursion the looping algorithm uses."""
        import numpy as np

        m = 3
        bn = benes(m)
        mid = np.concatenate([bn.level(l) for l in range(1, 2 * m)])
        sub = bn.subgraph(mid)
        comps = sub.connected_components()
        assert len(comps) == 2
        small = benes(m - 1)
        for comp in comps:
            assert len(comp) == small.num_nodes
            assert sub.subgraph(comp).num_edges == small.num_edges

    def test_io_levels(self):
        bn = benes(2)
        assert len(bn.inputs()) == 4
        assert len(bn.outputs()) == 4
