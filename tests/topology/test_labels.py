"""Bit/label conventions (Section 1.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.labels import (
    bit_of,
    bit_reversal,
    bit_reversal_array,
    column_bits,
    flip_bit,
    format_column,
    ilog2,
    is_power_of_two,
    prefix_bits,
    suffix_bits,
)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << t) for t in range(30))

    def test_non_powers(self):
        for v in (0, -1, 3, 5, 6, 7, 9, 100, 1023):
            assert not is_power_of_two(v)

    def test_ilog2(self):
        for t in range(20):
            assert ilog2(1 << t) == t

    def test_ilog2_rejects(self):
        with pytest.raises(ValueError):
            ilog2(12)


class TestBitConventions:
    def test_msb_is_position_one(self):
        # Paper: "the most significant bit being numbered 1".
        assert bit_of(0b100, 1, 3) == 1
        assert bit_of(0b100, 2, 3) == 0
        assert bit_of(0b001, 3, 3) == 1

    def test_flip_bit_msb(self):
        assert flip_bit(0, 1, 3) == 0b100
        assert flip_bit(0, 3, 3) == 0b001

    def test_bit_positions_out_of_range(self):
        with pytest.raises(ValueError):
            bit_of(0, 0, 3)
        with pytest.raises(ValueError):
            flip_bit(0, 4, 3)

    @given(st.integers(1, 16), st.data())
    def test_flip_is_involution(self, lg, data):
        w = data.draw(st.integers(0, (1 << lg) - 1))
        pos = data.draw(st.integers(1, lg))
        assert flip_bit(flip_bit(w, pos, lg), pos, lg) == w

    @given(st.integers(1, 16), st.data())
    def test_flip_changes_exactly_one_bit(self, lg, data):
        w = data.draw(st.integers(0, (1 << lg) - 1))
        pos = data.draw(st.integers(1, lg))
        diff = w ^ flip_bit(w, pos, lg)
        assert diff.bit_count() == 1
        assert bit_of(diff, pos, lg) == 1


class TestBitReversal:
    def test_examples(self):
        assert bit_reversal(0b110, 3) == 0b011
        assert bit_reversal(0b100, 3) == 0b001
        assert bit_reversal(0, 5) == 0

    @given(st.integers(1, 16), st.data())
    def test_involution(self, lg, data):
        w = data.draw(st.integers(0, (1 << lg) - 1))
        assert bit_reversal(bit_reversal(w, lg), lg) == w

    @given(st.integers(1, 12))
    def test_array_matches_scalar(self, lg):
        ws = np.arange(1 << lg)
        arr = bit_reversal_array(ws, lg)
        assert all(arr[w] == bit_reversal(int(w), lg) for w in ws)

    @given(st.integers(1, 12))
    def test_is_permutation(self, lg):
        arr = bit_reversal_array(np.arange(1 << lg), lg)
        assert len(np.unique(arr)) == 1 << lg


class TestPrefixSuffix:
    @given(st.integers(1, 16), st.data())
    def test_recompose(self, lg, data):
        w = data.draw(st.integers(0, (1 << lg) - 1))
        cut = data.draw(st.integers(0, lg))
        p = prefix_bits(w, cut, lg)
        s = suffix_bits(w, lg - cut)
        assert (p << (lg - cut)) | s == w

    def test_prefix_examples(self):
        assert prefix_bits(0b1011, 2, 4) == 0b10
        assert prefix_bits(0b1011, 0, 4) == 0
        assert suffix_bits(0b1011, 2) == 0b11
        assert suffix_bits(0b1011, 0) == 0

    def test_range_checks(self):
        with pytest.raises(ValueError):
            prefix_bits(0, 5, 4)
        with pytest.raises(ValueError):
            suffix_bits(0, -1)


class TestFormatting:
    def test_column_bits_msb_first(self):
        assert column_bits(0b101, 3) == (1, 0, 1)

    def test_format_column(self):
        assert format_column(5, 4) == "0101"
        assert format_column(0, 0) == ""
