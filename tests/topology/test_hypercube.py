"""Hypercube companion substrate (Section 1.5)."""

import pytest

from repro.topology import hypercube, hypercube_bisection_width


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_counts(self, d):
        q = hypercube(d)
        assert q.num_nodes == 1 << d
        assert q.num_edges == d * (1 << (d - 1)) if d else q.num_edges == 0
        assert (q.degrees == d).all()

    def test_dimension_edges(self):
        q = hypercube(3)
        for b in range(3):
            de = q.dimension_edges(b)
            assert len(de) == 4
            for u, v in de:
                assert u ^ v == 1 << b

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            hypercube(3).dimension_edges(3)

    def test_bisection_width_closed_form(self):
        assert hypercube_bisection_width(0) == 0
        assert hypercube_bisection_width(3) == 4

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_bisection_width_exact(self, d):
        """Our exact solver recovers the classical BW(Q_d) = 2^{d-1}."""
        from repro.cuts import cut_profile

        q = hypercube(d)
        assert cut_profile(q).bisection_width() == hypercube_bisection_width(d)

    def test_butterfly_is_subgraph_flavor(self):
        """Sanity in the Greenberg et al. direction: B4 has no more edges
        than Q4 and embeds with small dilation (here: just edge count)."""
        from repro.topology import butterfly

        assert butterfly(4).num_edges <= hypercube(4).num_edges
