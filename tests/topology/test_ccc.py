"""Cube-connected cycles (Section 1.1)."""

import numpy as np
import pytest

from repro.topology import cube_connected_cycles
from repro.topology.labels import flip_bit


class TestConstruction:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_counts(self, n):
        ccc = cube_connected_cycles(n)
        lg = ccc.lg
        assert ccc.num_nodes == n * lg
        assert ccc.num_edges == n * lg + n * lg // 2  # cycle + cube edges
        assert (ccc.degrees == 3).all()  # CCC is 3-regular

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            cube_connected_cycles(2)

    def test_ccc4_parallel_cycle_edges(self):
        ccc = cube_connected_cycles(4)
        assert not ccc.is_simple  # length-2 cycles

    def test_ccc8_simple(self, ccc8):
        assert ccc8.is_simple


class TestAdjacency:
    def test_cycle_edges(self, ccc8):
        lg = ccc8.lg
        for w in range(8):
            for i in range(1, lg + 1):
                nxt = i % lg + 1
                assert ccc8.has_edge(ccc8.node(w, i), ccc8.node(w, nxt))

    def test_cube_edges_flip_position_bit(self, ccc8):
        """<w,i> ~ <w',i> iff w, w' differ exactly in bit position i."""
        lg = ccc8.lg
        for w in range(8):
            for i in range(1, lg + 1):
                u = ccc8.node(w, i)
                assert ccc8.has_edge(u, ccc8.node(flip_bit(w, i, lg), i))
                for pos in range(1, lg + 1):
                    if pos != i:
                        assert not ccc8.has_edge(u, ccc8.node(flip_bit(w, pos, lg), i))

    def test_cycle_structure(self, ccc8):
        cyc = ccc8.cycle(5)
        assert len(cyc) == ccc8.lg
        sub = ccc8.subgraph(cyc)
        assert (sub.degrees == 2).all()  # each cycle is a simple cycle

    def test_position_sets(self, ccc8):
        pos = ccc8.position(2)
        assert len(pos) == 8

    def test_bounds(self, ccc8):
        with pytest.raises(ValueError):
            ccc8.node(0, 0)
        with pytest.raises(ValueError):
            ccc8.node(0, 4)


class TestLayers:
    def test_layers_cyclic(self, ccc8):
        assert len(ccc8.layers()) == 3
        assert ccc8.cyclic

    def test_cube_edges_are_intra_layer(self, ccc8):
        pos_of = np.arange(ccc8.num_nodes) // ccc8.n
        intra = 0
        for u, v in ccc8.edges:
            if pos_of[u] == pos_of[v]:
                intra += 1
        assert intra == ccc8.n * ccc8.lg // 2
