"""Random regular graphs (the Section 1.3 expander foil)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.random_regular import random_regular_graph


class TestGenerator:
    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_regularity(self, seed):
        g = random_regular_graph(16, 4, seed=seed)
        assert (g.degrees == 4).all()
        assert g.is_simple

    def test_deterministic_per_seed(self):
        a = random_regular_graph(20, 3, seed=5)
        b = random_regular_graph(20, 3, seed=5)
        assert np.array_equal(a.edges, b.edges)

    def test_odd_total_degree_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_usually_connected(self):
        g = random_regular_graph(24, 4, seed=7)
        assert len(g.connected_components()) == 1

    def test_expansion_beats_butterfly(self):
        """The §1.3 point: random 4-regular EE(G,k)/k stays well above the
        wrapped butterfly's at moderate k."""
        from repro.cuts import cut_profile
        from repro.expansion import edge_expansion_profile
        from repro.topology import wrapped_butterfly

        rr = random_regular_graph(24, 4, seed=7)
        w8 = wrapped_butterfly(8)
        prof_r = cut_profile(rr).values
        prof_w = edge_expansion_profile(w8)
        assert prof_r[12] > prof_w[12]
