"""The Network container."""

import numpy as np
import pytest

from repro.topology import Network


def triangle():
    return Network(["a", "b", "c"], [(0, 1), (1, 2), (0, 2)], name="triangle")


class TestConstruction:
    def test_basic_counts(self):
        net = triangle()
        assert net.num_nodes == 3
        assert net.num_edges == 3
        assert len(net) == 3

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Network(["a", "a"], [])

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Network(["a", "b"], [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Network(["a", "b"], [(0, 2)])

    def test_edges_canonicalized(self):
        net = Network(["a", "b"], [(1, 0)])
        assert net.edges.tolist() == [[0, 1]]

    def test_edges_read_only(self):
        net = triangle()
        with pytest.raises(ValueError):
            net.edges[0, 0] = 5

    def test_empty_edges(self):
        net = Network(["a", "b"], [])
        assert net.num_edges == 0
        assert net.degrees.tolist() == [0, 0]


class TestLabels:
    def test_index_round_trip(self):
        net = triangle()
        for i, lab in enumerate(net.labels):
            assert net.index_of(lab) == i
            assert net.label_of(i) == lab

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            triangle().index_of("z")

    def test_has_node(self):
        net = triangle()
        assert net.has_node("a") and not net.has_node("z")

    def test_indices_of(self):
        net = triangle()
        assert net.indices_of(["c", "a"]).tolist() == [2, 0]


class TestStructure:
    def test_degrees(self):
        assert triangle().degrees.tolist() == [2, 2, 2]

    def test_multigraph_degrees(self):
        net = Network(["a", "b"], [(0, 1), (0, 1)])
        assert net.degrees.tolist() == [2, 2]
        assert not net.is_simple
        assert net.edge_multiset == {(0, 1): 2}

    def test_neighbors_sorted(self):
        net = Network(range(4), [(3, 0), (0, 1)])
        assert net.neighbors(0).tolist() == [1, 3]

    def test_has_edge(self):
        net = triangle()
        assert net.has_edge(0, 1) and net.has_edge(1, 0)
        assert not net.has_edge(0, 0)

    def test_neighborhood(self):
        net = Network(range(5), [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert net.neighborhood([1, 2]).tolist() == [0, 3]
        assert net.neighborhood([0]).tolist() == [1]

    def test_connected_components(self):
        net = Network(range(5), [(0, 1), (2, 3)])
        comps = sorted(tuple(c) for c in net.connected_components())
        assert comps == [(0, 1), (2, 3), (4,)]


class TestDerived:
    def test_subgraph(self):
        net = triangle()
        sub = net.subgraph([0, 1])
        assert sub.num_nodes == 2 and sub.num_edges == 1
        assert sub.labels == ("a", "b")

    def test_to_networkx_simple(self):
        g = triangle().to_networkx()
        import networkx as nx

        assert isinstance(g, nx.Graph)
        assert g.number_of_edges() == 3

    def test_to_networkx_multigraph(self):
        net = Network(["a", "b"], [(0, 1), (0, 1)])
        g = net.to_networkx()
        import networkx as nx

        assert isinstance(g, nx.MultiGraph)
        assert g.number_of_edges() == 2


class TestCutPrimitives:
    def test_cut_capacity(self):
        net = triangle()
        assert net.cut_capacity(np.array([True, False, False])) == 2
        assert net.cut_capacity(np.array([True, True, True])) == 0

    def test_cut_capacity_shape_check(self):
        with pytest.raises(ValueError):
            triangle().cut_capacity(np.array([True]))

    def test_cut_edges(self):
        net = triangle()
        ce = net.cut_edges(np.array([True, False, False]))
        assert sorted(map(tuple, ce.tolist())) == [(0, 1), (0, 2)]

    def test_multigraph_cut_counts_multiplicity(self):
        net = Network(["a", "b"], [(0, 1), (0, 1)])
        assert net.cut_capacity(np.array([True, False])) == 2
