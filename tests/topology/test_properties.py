"""Structural properties and the Section 1.1 claims."""

import numpy as np
import pytest

from repro.topology import (
    butterfly,
    butterfly_degree_census,
    cube_connected_cycles,
    degree_census,
    diameter,
    eccentricity,
    expected_diameter,
    level_four_cycles,
    wrapped_butterfly,
)


class TestDiameter:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_bn_diameter_is_2logn(self, n):
        bf = butterfly(n)
        assert diameter(bf) == 2 * bf.lg == expected_diameter(bf)

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_wn_diameter_is_3logn_over_2(self, n):
        bf = wrapped_butterfly(n)
        assert diameter(bf) == (3 * bf.lg) // 2 == expected_diameter(bf)

    def test_eccentricity_le_diameter(self, b8):
        assert eccentricity(b8, 0) <= diameter(b8)

    def test_disconnected_raises(self):
        from repro.topology import Network

        net = Network(range(4), [(0, 1)])
        with pytest.raises(ValueError):
            diameter(net)


class TestDegreeCensus:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_bn_census(self, n):
        bf = butterfly(n)
        assert degree_census(bf) == butterfly_degree_census(bf)

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_wn_census(self, n):
        bf = wrapped_butterfly(n)
        assert degree_census(bf) == {4: n * bf.lg}

    def test_ccc_census(self):
        assert degree_census(cube_connected_cycles(8)) == {3: 24}


class TestFourCycles:
    """Lemma 2.12's structural fact: level edges decompose into 4-cycles."""

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_cycles_are_valid(self, n):
        bf = butterfly(n)
        for i in range(bf.lg):
            fc = level_four_cycles(bf, i)
            assert fc.shape == (n // 2, 4)
            for v, u, v2, u2 in fc:
                assert bf.has_edge(int(v), int(u))
                assert bf.has_edge(int(u), int(v2))
                assert bf.has_edge(int(v2), int(u2))
                assert bf.has_edge(int(u2), int(v))

    def test_cycles_cover_all_level_edges(self, b8):
        for i in range(b8.lg):
            fc = level_four_cycles(b8, i)
            edges = set()
            for v, u, v2, u2 in fc:
                for a, b in ((v, u), (u, v2), (v2, u2), (u2, v)):
                    edges.add((min(int(a), int(b)), max(int(a), int(b))))
            assert len(edges) == 2 * b8.n  # node- and edge-disjoint cover

    def test_cycles_node_disjoint(self, b8):
        fc = level_four_cycles(b8, 1)
        flat = fc.reshape(-1)
        assert len(np.unique(flat)) == len(flat)

    def test_wrapped_four_cycles(self, w8):
        fc = level_four_cycles(w8, w8.lg - 1)  # the wrap level pair
        for v, u, v2, u2 in fc:
            assert w8.has_edge(int(v), int(u))
            assert w8.has_edge(int(u2), int(v))

    def test_bad_level_rejected(self, b8):
        with pytest.raises(ValueError):
            level_four_cycles(b8, b8.lg)
