"""Property tests for the Cartesian-product operator and its families.

The product is the bridge from the paper's butterflies to the
data-center topologies (Arjona-Aroca & Fernández Anta, PAPERS.md):
node/edge counts must multiply out, regularity must add up, the named
families must literally *be* the products they claim to be (Torus =
product of cycles, FBfly(2, d) = hypercube), and the new automorphism
groups behind the cache keys must be orbit-invariant yet separating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.canonical import canonical_form
from repro.topology import (
    CartesianProduct,
    cartesian_product,
    complete_graph,
    cycle_graph,
    fat_tree,
    flattened_butterfly,
    hypercube,
    is_automorphism,
    mesh,
    path_graph,
    torus,
)


class TestFactors:
    def test_path_graph(self):
        p = path_graph(5)
        assert p.num_nodes == 5 and p.num_edges == 4
        assert p.degrees.tolist() == [1, 2, 2, 2, 1]

    def test_cycle_graph(self):
        c = cycle_graph(6)
        assert c.num_nodes == 6 and c.num_edges == 6
        assert set(c.degrees.tolist()) == {2}

    def test_degenerate_factors_rejected(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            cycle_graph(2)


class TestOperator:
    def test_counts_multiply(self):
        """|V| = prod |Vi|; |E| = sum |Ei| * prod_{j != i} |Vj|."""
        g = cartesian_product(path_graph(3), cycle_graph(4), complete_graph(3))
        assert g.num_nodes == 3 * 4 * 3
        assert g.num_edges == 2 * 4 * 3 + 4 * 3 * 3 + 3 * 3 * 4

    def test_regularity_adds(self):
        """Products of regular factors are regular of the summed degree."""
        g = cartesian_product(cycle_graph(4), complete_graph(4))
        assert set(g.degrees.tolist()) == {2 + 3}

    def test_labels_are_coordinate_tuples(self):
        g = cartesian_product(path_graph(2), path_graph(3))
        assert g.labels[g.node((1, 2))] == (1, 2)

    def test_node_coords_round_trip(self):
        g = cartesian_product(path_graph(3), cycle_graph(4), path_graph(2))
        for v in range(g.num_nodes):
            assert g.node(g.coords_of(v)) == v

    def test_slice_nodes_partition(self):
        g = cartesian_product(cycle_graph(3), path_graph(4))
        slices = [g.slice_nodes(0, i) for i in range(3)]
        assert sorted(np.concatenate(slices).tolist()) == list(range(12))
        assert all(len(s) == 4 for s in slices)

    def test_adjacency_is_one_coordinate_step(self):
        g = cartesian_product(path_graph(3), cycle_graph(3))
        for u, v in g.edges:
            cu, cv = g.coords_of(int(u)), g.coords_of(int(v))
            assert sum(a != b for a, b in zip(cu, cv)) == 1

    def test_parallel_factor_edges_multiply_through(self):
        from repro.topology import Network

        doubled = Network(range(2), [[0, 1], [0, 1]], name="D2")
        g = cartesian_product(doubled, path_graph(3))
        # 2 parallel edges per fiber of the first factor, 3 fibers.
        assert g.num_edges == 2 * 3 + 2 * 2

    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValueError):
            CartesianProduct([])


class TestFamilies:
    def test_torus_is_product_of_cycles(self):
        assert (
            torus(3, 4).edge_digest
            == cartesian_product(cycle_graph(3), cycle_graph(4)).edge_digest
        )

    def test_mesh_is_product_of_paths(self):
        assert (
            mesh(3, 2).edge_digest
            == cartesian_product(path_graph(3), path_graph(2)).edge_digest
        )

    def test_fbfly2_is_the_hypercube(self):
        assert flattened_butterfly(2, 3).edge_digest == hypercube(3).edge_digest

    def test_fbfly_is_product_of_completes(self):
        assert (
            flattened_butterfly(4, 2).edge_digest
            == cartesian_product(complete_graph(4), complete_graph(4)).edge_digest
        )

    @pytest.mark.parametrize("net", [torus(3, 3), mesh(4, 3), fat_tree(3)],
                             ids=["torus", "mesh", "fattree"])
    def test_layers_partition_and_edges_respect_them(self, net):
        layers = net.layers()
        idx = np.concatenate(layers)
        assert sorted(idx.tolist()) == list(range(net.num_nodes))
        of = np.empty(net.num_nodes, dtype=np.int64)
        for i, layer in enumerate(layers):
            of[layer] = i
        k = len(layers)
        for u, v in net.edges:
            d = abs(int(of[int(u)]) - int(of[int(v)]))
            if net.cyclic:
                d = min(d, k - d)
            assert d <= 1

    def test_fat_tree_structure(self):
        ft = fat_tree(3)
        assert ft.num_nodes == 15
        assert len(ft.leaves()) == 8
        # Every level carries the same aggregate bandwidth 2^d.
        for level in range(1, ft.depth + 1):
            assert ft.link_capacity(level) * (1 << level) == 1 << ft.depth
        assert ft.subtree(1).tolist() == [1, 3, 4, 7, 8, 9, 10]

    def test_family_validation(self):
        with pytest.raises(ValueError):
            torus(2, 3)  # sides must be >= 3
        with pytest.raises(ValueError):
            mesh(1, 2)
        with pytest.raises(ValueError):
            flattened_butterfly(1, 2)
        with pytest.raises(ValueError):
            fat_tree(0)

    def test_square_flag(self):
        assert torus(3, 3).is_square and not torus(3, 4).is_square
        assert mesh(2, 2, 2).is_square and not mesh(2, 3).is_square


class TestCanonicalKeys:
    """Orbit-invariance and separation of the new automorphism groups."""

    GROUPS = [
        pytest.param(lambda: torus(3, 3), id="torus3x3"),
        pytest.param(lambda: mesh(3, 2), id="mesh3x2"),
        pytest.param(lambda: flattened_butterfly(3, 2), id="fbfly3d2"),
        pytest.param(lambda: fat_tree(3), id="ft3"),
    ]

    @pytest.mark.parametrize("build", GROUPS)
    def test_candidates_are_automorphisms(self, build):
        from repro.perf.canonical import (
            _fat_tree_candidates,
            _reflection_candidates,
            _translation_candidates,
        )
        from repro.topology import FatTree, Mesh

        net = build()
        if isinstance(net, FatTree):
            perms = _fat_tree_candidates(net)
        elif isinstance(net, Mesh):
            perms = _reflection_candidates(net.shape)
        else:
            perms = _translation_candidates(net.shape)
        assert len(perms) > 1
        for p in perms:
            assert is_automorphism(net, p)

    @pytest.mark.parametrize("build", GROUPS)
    def test_orbit_invariance(self, build, rng):
        """Isomorphic (net, counted) instances collide on one key."""
        from repro.perf.canonical import (
            _fat_tree_candidates,
            _reflection_candidates,
            _translation_candidates,
        )
        from repro.topology import FatTree, Mesh

        net = build()
        if isinstance(net, FatTree):
            perms = _fat_tree_candidates(net)
        elif isinstance(net, Mesh):
            perms = _reflection_candidates(net.shape)
        else:
            perms = _translation_candidates(net.shape)
        counted = np.sort(rng.choice(net.num_nodes, size=3, replace=False))
        base = canonical_form(net, counted)
        assert base.group_size == len(perms)
        for p in perms:
            sibling = canonical_form(net, p[counted])
            assert sibling.key == base.key

    @pytest.mark.parametrize("build", GROUPS)
    def test_full_counted_set_shortcut(self, build):
        net = build()
        form = canonical_form(net)
        assert form.key.endswith(":full")
        assert form.group_size == 1
        # The perm is the axis normalization: a bijection, and the
        # identity whenever the sides are already in sorted order.
        np.testing.assert_array_equal(np.sort(form.perm), np.arange(net.num_nodes))

    @pytest.mark.parametrize(
        "build", [pytest.param(lambda: torus(3, 3), id="torus3x3"),
                  pytest.param(lambda: mesh(2, 3), id="mesh2x3"),
                  pytest.param(lambda: flattened_butterfly(3, 2), id="fbfly3d2"),
                  pytest.param(lambda: fat_tree(3), id="ft3")],
    )
    def test_sorted_shapes_keep_identity_perm(self, build):
        net = build()
        np.testing.assert_array_equal(
            canonical_form(net).perm, np.arange(net.num_nodes)
        )

    def test_axis_order_shares_one_key(self):
        """Torus(4,3) is Torus(3,4) relabeled; the keys must collide."""
        assert canonical_form(torus(4, 3)).key == canonical_form(torus(3, 4)).key
        assert canonical_form(mesh(3, 2)).key == canonical_form(mesh(2, 3)).key
        assert canonical_form(torus(3, 4)).key == "torus:3x4:full"
        # Different multisets of sides must still separate.
        assert canonical_form(torus(3, 4)).key != canonical_form(torus(3, 3)).key

    def test_axis_normalization_transports_cuts(self, rng):
        """A cut carried a→canonical→b keeps its capacity across the orbit."""
        from repro.perf.canonical import (
            mask_to_side, permute_mask, side_to_mask, unpermute_mask,
        )

        for a, b in [(torus(3, 4), torus(4, 3)), (mesh(2, 3), mesh(3, 2))]:
            pa, pb = canonical_form(a).perm, canonical_form(b).perm
            side = rng.random(a.num_nodes) < 0.5
            canon_mask = permute_mask(side_to_mask(side), pa)
            side_b = mask_to_side(unpermute_mask(canon_mask, pb), b.num_nodes)
            assert b.cut_capacity(side_b) == a.cut_capacity(side)

    def test_axis_rotated_counted_sets_still_separate_orbits(self, rng):
        """Counted-set keys on a rotated instance match its twin's orbits."""
        a, b = torus(3, 4), torus(4, 3)
        pa, pb = canonical_form(a).perm, canonical_form(b).perm
        counted = np.sort(rng.choice(a.num_nodes, size=3, replace=False))
        # The isomorphic image of ``counted`` in b's coordinates.
        image = np.sort(np.argsort(pb)[pa[counted]])
        assert canonical_form(a, counted).key == canonical_form(b, image).key

    def test_separation_across_sizes_and_families(self):
        keys = {
            canonical_form(n).key
            for n in (torus(3, 3), torus(3, 3, 3), mesh(3, 3),
                      flattened_butterfly(3, 2), fat_tree(2), fat_tree(3))
        }
        assert len(keys) == 6

    def test_separation_within_a_family(self):
        """Counted sets in different orbits must not collide."""
        net = torus(3, 3)
        # {0} and {4} are translates (same orbit); a 2-set is not a 1-set.
        k1 = canonical_form(net, np.array([0]))
        k2 = canonical_form(net, np.array([4]))
        k3 = canonical_form(net, np.array([0, 1]))
        k4 = canonical_form(net, np.array([0, 4]))
        assert k1.key == k2.key
        assert len({k1.key, k3.key, k4.key}) == 3

    def test_witness_transport_preserves_capacity(self, rng):
        """A witness mapped through the canonical perm keeps its capacity."""
        from repro.perf.canonical import (
            mask_to_side, permute_mask, side_to_mask, unpermute_mask,
        )

        net = flattened_butterfly(3, 2)
        counted = np.array([0, 1, 3], dtype=np.int64)
        form = canonical_form(net, counted)
        side = rng.random(net.num_nodes) < 0.5
        mask = side_to_mask(side)
        transported = permute_mask(mask, form.perm)
        assert net.cut_capacity(mask_to_side(transported, net.num_nodes)) == \
            net.cut_capacity(side)
        assert unpermute_mask(transported, form.perm) == mask
