"""Every registered paper claim must pass at default parameters."""

import pytest

from repro.core import REGISTRY, all_claim_ids, check


@pytest.mark.parametrize("claim_id", all_claim_ids())
def test_claim_passes(claim_id):
    res = REGISTRY[claim_id].check()
    assert res.passed, f"{claim_id} failed: {res.details}"


def test_registry_covers_the_paper_skeleton():
    ids = set(all_claim_ids())
    must_have = {
        "structure", "lemma-2.1", "lemma-2.3", "lemma-2.4", "lemma-2.5",
        "lemma-2.8", "lemma-2.11", "lemma-2.13", "lemma-2.17", "lemma-2.19",
        "theorem-2.20", "lemma-3.1", "lemma-3.2", "lemma-3.3",
        "section-4.3-lower", "section-4.3-upper", "credit-schemes",
    }
    assert must_have <= ids


def test_claims_have_references_and_statements():
    for claim in REGISTRY.values():
        assert claim.reference
        assert len(claim.statement) >= 10


def test_check_helper():
    res = check("lemma-2.18")
    assert res.passed and res.claim_id == "lemma-2.18"


def test_parameterized_check():
    res = check("lemma-2.1", n=8)
    assert res.passed
