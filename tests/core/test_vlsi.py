"""VLSI corollaries (Section 1.2)."""

import math

import pytest

from repro.core import (
    at2_lower_bound,
    bn_area_estimate,
    bn_volume_order,
    routing_time_lower_bound,
    thompson_area_lower_bound,
)


class TestThompson:
    def test_area_bound(self):
        assert thompson_area_lower_bound(8) == 64

    def test_folklore_vs_theorem_area_gap(self):
        """Theorem 2.20 lowers the certified area floor by (2(sqrt2-1))^2."""
        n = 1 << 20
        folk = thompson_area_lower_bound(n)
        true_floor = thompson_area_lower_bound(2 * (math.sqrt(2) - 1) * n)
        assert true_floor / folk == pytest.approx((2 * (math.sqrt(2) - 1)) ** 2)

    def test_area_floor_below_known_layout(self):
        """BW^2 <= layout area (1±o(1)) n^2 must be consistent."""
        n = 1 << 10
        assert thompson_area_lower_bound(n) <= bn_area_estimate(n) * 1.01


class TestAT2:
    def test_formula(self):
        assert at2_lower_bound(10) == 100

    def test_routing_time(self):
        assert routing_time_lower_bound(100, 10) == 10
        assert math.isinf(routing_time_lower_bound(100, 0))


class TestOrders:
    def test_volume_order(self):
        assert bn_volume_order(4) == pytest.approx(8.0)
