"""Golden regression against the paper's exact statements.

Every expected number here is *derived* from :mod:`repro.core.claims` —
Theorem 2.20's coefficient and the Lemma 3.2 / 3.3 closed forms — not
hand-copied into the assertions, so a drift between the claims table and
the solvers fails loudly on all exactly-solvable sizes.
"""

from __future__ import annotations

import math

import pytest

from repro.core.bisection import (
    butterfly_bisection_width,
    ccc_bisection_width,
    wrapped_bisection_width,
)
from repro.core.claims import (
    THEOREM_220_COEFFICIENT,
    lemma_32_width,
    lemma_33_width,
    theorem_220_strict_floor,
)


class TestTheorem220:
    def test_coefficient_is_the_papers(self):
        assert math.isclose(THEOREM_220_COEFFICIENT, 2.0 * (math.sqrt(2.0) - 1.0))
        assert 0.82 < THEOREM_220_COEFFICIENT < 0.83

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_exact_bw_beats_the_strict_floor(self, n):
        cert = butterfly_bisection_width(n)
        assert cert.is_exact
        assert cert.value > theorem_220_strict_floor(n)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_folklore_ceiling(self, n):
        assert butterfly_bisection_width(n).value <= n


class TestLemma32:
    @pytest.mark.parametrize("n", [4, 8])
    def test_wrapped_width_is_n(self, n):
        cert = wrapped_bisection_width(n)
        assert cert.is_exact
        assert cert.value == lemma_32_width(n) == n


class TestLemma33:
    @pytest.mark.parametrize("n", [4, 8])
    def test_ccc_width_is_half_n(self, n):
        cert = ccc_bisection_width(n)
        assert cert.is_exact
        assert cert.value == lemma_33_width(n) == n // 2

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError, match="even"):
            lemma_33_width(5)
