"""Paper-golden pins for the Arjona-Aroca product-network bounds.

The four claim-table helpers (``arjona_mesh_width``, ``arjona_torus_width``,
``fat_tree_width``, ``flattened_butterfly_width``) are pinned against
exact enumeration on every small instance, so the closed forms the
checker re-validates certificates with can never drift from what the
solvers actually compute.
"""

from __future__ import annotations

import pytest

from repro.core import check
from repro.core.claims import (
    CLAIM_TABLE,
    arjona_mesh_width,
    arjona_torus_width,
    fat_tree_width,
    flattened_butterfly_width,
)
from repro.cuts import cut_profile
from repro.topology import fat_tree, flattened_butterfly, mesh, torus


def _exact(net) -> int:
    assert net.num_nodes <= 16
    return cut_profile(net).bisection_width()


class TestClosedFormsMatchEnumeration:
    @pytest.mark.parametrize("side,dims", [(2, 2), (3, 2), (4, 2), (2, 3)])
    def test_mesh(self, side, dims):
        assert _exact(mesh(*(side,) * dims)) == arjona_mesh_width(side, dims)

    @pytest.mark.parametrize("side,dims", [(3, 1), (4, 1), (3, 2), (4, 2)])
    def test_torus(self, side, dims):
        assert _exact(torus(*(side,) * dims)) == arjona_torus_width(side, dims)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_fat_tree(self, depth):
        assert _exact(fat_tree(depth)) == fat_tree_width(depth)

    @pytest.mark.parametrize("ary,dims", [(2, 2), (2, 3), (4, 1), (4, 2)])
    def test_flattened_butterfly(self, ary, dims):
        assert _exact(flattened_butterfly(ary, dims)) == \
            flattened_butterfly_width(ary, dims)


class TestClosedFormValues:
    """Literal golden values, so a helper edit cannot silently re-pin."""

    def test_mesh_even_and_odd(self):
        assert arjona_mesh_width(4, 2) == 4
        assert arjona_mesh_width(4, 3) == 16
        assert arjona_mesh_width(3, 2) == 4       # (9-1)/2
        assert arjona_mesh_width(3, 3) == 13      # (27-1)/2
        assert arjona_mesh_width(5, 3) == 31      # (125-1)/4
        assert arjona_mesh_width(2, 5) == 16      # hypercube Q5

    def test_torus_doubles_the_mesh(self):
        for side, dims in ((3, 2), (4, 2), (5, 3), (6, 2)):
            assert arjona_torus_width(side, dims) == \
                2 * arjona_mesh_width(side, dims)

    def test_fat_tree_powers(self):
        assert [fat_tree_width(d) for d in (1, 2, 3, 4, 10)] == \
            [1, 2, 4, 8, 512]

    def test_fbfly_quarter_power(self):
        assert flattened_butterfly_width(4, 2) == 16
        assert flattened_butterfly_width(6, 2) == 54
        assert flattened_butterfly_width(2, 3) == 4

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            arjona_mesh_width(1, 2)
        with pytest.raises(ValueError):
            arjona_torus_width(2, 2)  # torus sides start at 3
        with pytest.raises(ValueError):
            fat_tree_width(0)
        with pytest.raises(ValueError):
            flattened_butterfly_width(3, 2)  # closed form is even-ary only


class TestClaimRegistry:
    CLAIM_IDS = ("product-mesh", "product-torus", "dc-fattree", "dc-fbfly")

    @pytest.mark.parametrize("cid", CLAIM_IDS)
    def test_row_exists_and_checker_passes(self, cid):
        assert cid in CLAIM_TABLE
        result = check(cid)
        assert result.passed, result.details

    @pytest.mark.parametrize("cid", CLAIM_IDS)
    def test_references_do_not_collide_with_paper_anchors(self, cid):
        """The product claims cite PAPERS.md prose, not numbered anchors
        of the source paper — so reference resolution stays unambiguous."""
        from repro.core.claims import parse_references

        assert parse_references(CLAIM_TABLE[cid].reference) == []
