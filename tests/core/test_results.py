"""BoundCertificate invariants."""

import pytest

from repro.core import BoundCertificate


class TestCertificate:
    def test_exact(self):
        c = BoundCertificate("X", 5, 5, "a", "b")
        assert c.is_exact
        assert c.value == 5

    def test_interval(self):
        c = BoundCertificate("X", 3, 7, "a", "b")
        assert not c.is_exact
        with pytest.raises(ValueError):
            _ = c.value

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            BoundCertificate("X", 8, 7, "a", "b")

    def test_str_exact(self):
        s = str(BoundCertificate("BW(B8)", 8, 8, "dp", "dp"))
        assert "BW(B8) = 8" in s

    def test_str_interval(self):
        s = str(BoundCertificate("X", 3, 7, "lo", "hi"))
        assert "[3, 7]" in s and "lo" in s and "hi" in s
