"""Certified expansion API."""

import pytest

from repro.core import edge_expansion, node_expansion
from repro.topology import butterfly, wrapped_butterfly


class TestEdgeExpansion:
    def test_exact_small(self, w8):
        cert = edge_expansion(w8, 4)
        assert cert.is_exact and cert.value == 8

    def test_exact_bn(self, b8):
        cert = edge_expansion(b8, 2)
        assert cert.is_exact and cert.value == 4

    def test_interval_large(self):
        w32 = wrapped_butterfly(32)
        cert = edge_expansion(w32, 12)
        assert cert.lower <= cert.upper
        # The witness value must be a real achievable expansion:
        assert cert.upper >= 1

    def test_witness_consistency_with_lemma41(self):
        """At an exact sub-butterfly size the interval's upper bound is at
        most the Lemma 4.1 witness value."""
        w64 = wrapped_butterfly(64)
        k = 3 << 2  # (d+1) 2^d with d = 2
        cert = edge_expansion(w64, k)
        assert cert.upper <= 4 << 2


class TestNodeExpansion:
    def test_exact_small(self, b8):
        cert = node_expansion(b8, 4)
        assert cert.is_exact and cert.value == 4

    def test_interval_large(self):
        b64 = butterfly(64)
        cert = node_expansion(b64, 24)
        assert cert.lower <= cert.upper
        # Lemma 4.10's twin witness (k = 24, d = 2) caps the upper bound at 8.
        assert cert.upper <= 8

    def test_wn_twin_witness_used(self):
        w64 = wrapped_butterfly(64)
        cert = node_expansion(w64, 24)
        assert cert.upper <= 3 << 3  # Lemma 4.4 value
