"""Paper claims re-checked at non-default sizes.

The registry's defaults pick the smallest meaningful instances; these
tests sweep the size-parameterizable claims over a ladder so a bug that
only bites at one width cannot hide.
"""

import pytest

from repro.core import check


class TestStructuralClaims:
    @pytest.mark.parametrize("n", [4, 16, 32])
    def test_structure(self, n):
        assert check("structure", n=n).passed

    @pytest.mark.parametrize("n", [4, 8, 32])
    def test_lemma_21(self, n):
        assert check("lemma-2.1", n=n).passed

    @pytest.mark.parametrize("n", [4, 16])
    def test_lemma_22(self, n):
        assert check("lemma-2.2", n=n, samples=15).passed

    @pytest.mark.parametrize("n", [4, 8, 32])
    def test_lemma_23(self, n):
        assert check("lemma-2.3", n=n).passed

    @pytest.mark.parametrize("n", [4, 8, 32])
    def test_lemma_24(self, n):
        assert check("lemma-2.4", n=n).passed


class TestCompactnessClaims:
    @pytest.mark.parametrize("n", [4, 16])
    def test_lemma_28(self, n):
        assert check("lemma-2.8", n=n, trials=60).passed

    @pytest.mark.parametrize("n", [4, 16])
    def test_lemma_29(self, n):
        assert check("lemma-2.9", n=n, trials=30).passed

    @pytest.mark.parametrize("n", [8, 32])
    def test_lemma_215(self, n):
        assert check("lemma-2.15", n=n).passed


class TestEmbeddingClaims:
    @pytest.mark.parametrize("n", [8, 32])
    def test_lemma_25(self, n):
        assert check("lemma-2.5", n=n, perms=2).passed

    @pytest.mark.parametrize("n,j,i", [(4, 1, 0), (16, 2, 3), (8, 3, 2)])
    def test_lemma_210(self, n, j, i):
        assert check("lemma-2.10", n=n, j=j, i=i).passed

    @pytest.mark.parametrize("n,j,k", [(16, 2, 2), (64, 2, 8), (64, 8, 4)])
    def test_lemma_211(self, n, j, k):
        assert check("lemma-2.11", n=n, j=j, k=k).passed


class TestMosClaims:
    @pytest.mark.parametrize("j", [2, 6, 10])
    def test_lemma_217(self, j):
        # Even j: the lemma's stated parity (odd j^2 shifts the half by one).
        assert check("lemma-2.17", j=j).passed

    def test_lemma_219_wide_even_window(self):
        assert check("lemma-2.19", js=(2, 6, 10, 34, 100, 512)).passed

    def test_lemma_219_fails_at_odd_seven(self):
        """The parity condition is load-bearing: j = 7 violates the strict
        bound, so the claim checker must reject a window containing it."""
        assert not check("lemma-2.19", js=(2, 7, 8)).passed


class TestExpansionClaims:
    @pytest.mark.parametrize("n,d", [(32, 1), (256, 4)])
    def test_table_upper(self, n, d):
        assert check("section-4.3-upper", n=n, d=d).passed

    @pytest.mark.parametrize("n", [32, 128])
    def test_credit_schemes(self, n):
        assert check("credit-schemes", n=n, trials=4).passed

    @pytest.mark.parametrize("n", [8, 16])
    def test_hong_kung(self, n):
        assert check("section-1.6-hong-kung", n=n, trials=8).passed


class TestRoutingClaims:
    @pytest.mark.parametrize("n", [8, 32])
    def test_routing_bound(self, n):
        assert check("routing-bound", n=n).passed

    @pytest.mark.parametrize("n", [4, 16])
    def test_menger(self, n):
        assert check("menger-io", n=n).passed
