"""The degradation cascade always returns a certified bound."""

import numpy as np
import pytest

from repro.core import solve_with_fallback
from repro.obs import Collector, collecting
from repro.perf.cache import SolverCache
from repro.resilience import Budget, CancellationToken
from repro.topology import Network, butterfly, random_regular_graph, wrapped_butterfly
from repro.verify import WITNESS_FREE_TOKEN


def _path(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


class TestExactTiers:
    def test_tier1_enumeration_on_a_path(self):
        cert = solve_with_fallback(_path(8))
        assert cert.lower == cert.upper == 1
        assert "tier-1" in cert.lower_evidence and "exact" in cert.lower_evidence
        assert cert.witness is not None and cert.witness.capacity == 1

    def test_tier1_on_b4_matches_the_paper(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.lower == cert.upper == 4  # BW(B4) = n = 4
        assert "tier-1" in cert.upper_evidence

    def test_tier2_layered_dp_on_b8(self, b8):
        # 32 nodes: enumeration skipped, layered DP exact.
        cert = solve_with_fallback(b8)
        assert cert.lower == cert.upper == 8  # BW(B8) = n = 8
        assert "tier-2" in cert.upper_evidence
        assert "tier-1 exhaustive enumeration skipped" in cert.lower_evidence

    def test_tier3_branch_and_bound_on_a_general_graph(self):
        net = random_regular_graph(26, 3, seed=1)
        cert = solve_with_fallback(net)
        assert cert.lower == cert.upper
        assert "tier-3" in cert.upper_evidence
        assert "tier-2 layered DP skipped" in cert.upper_evidence

    def test_witness_is_a_balanced_cut(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.witness.is_bisection()
        assert cert.witness.capacity == cert.upper


class TestDegradation:
    def test_expired_budget_still_certifies(self, b4):
        """Acceptance: exact solve under an already-expired budget."""
        cert = solve_with_fallback(b4, budget=Budget(0))
        assert cert.lower <= cert.upper
        assert cert.lower == 0 and cert.upper == b4.num_edges
        assert "tier-5" in cert.lower_evidence
        assert "budget" in cert.lower_evidence
        assert "tier-1" in cert.lower_evidence  # skip reasons are recorded

    def test_cancellation_token_degrades_too(self, b4):
        token = CancellationToken()
        token.cancel()
        cert = solve_with_fallback(b4, budget=Budget(None, token=token))
        assert cert.lower == 0 and cert.upper == b4.num_edges

    def test_heuristic_tier_tightens_large_instances(self, b16):
        # B16: 80 nodes and layer width 16 > 12, so every exact tier is out
        # of reach and the heuristics must carry the upper bound.
        cert = solve_with_fallback(b16)
        assert cert.lower <= cert.upper < b16.num_edges
        assert "tier-4" in cert.upper_evidence
        assert cert.witness is not None
        assert cert.witness.capacity == cert.upper

    def test_partial_enumeration_contributes_an_upper_bound(self):
        # Expire mid-sweep: small batches, a clock that dies after 3 polls.
        t = {"v": 0.0}

        def clock():
            t["v"] += 1.0
            return t["v"]

        net = _path(14)
        budget = Budget(3.5, clock=clock, max_batch_bits=8)
        cert = solve_with_fallback(net, budget=budget, bb_limit=0)
        assert cert.lower <= cert.upper
        assert "truncated" in cert.upper_evidence or "tier-" in cert.upper_evidence

    def test_quantity_names_the_network(self, b4):
        cert = solve_with_fallback(b4, budget=Budget(0))
        assert b4.name in cert.quantity


class TestWitnessContract:
    """Every certificate carries a checkable witness or says it doesn't."""

    def test_exact_solves_carry_a_witness(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.witness is not None
        assert cert.witness.capacity == cert.upper

    def test_trivial_ceiling_is_marked_witness_free(self, b4):
        cert = solve_with_fallback(b4, budget=Budget(0))
        assert cert.witness is None
        assert WITNESS_FREE_TOKEN in cert.upper_evidence

    def test_partial_pin_sweep_is_marked_witness_free(self):
        # W8 is cyclic, so the DP pins the first layer's 2^8 masks one
        # sweep at a time and can genuinely truncate between pins.  Expire
        # the budget after a few polls; the kept minima outlive their
        # witnesses and the certificate must say so.
        t = {"v": 0.0}

        def clock():
            t["v"] += 1.0
            return t["v"]

        w8 = wrapped_butterfly(8)
        cert = solve_with_fallback(
            w8, budget=Budget(3.5, clock=clock), enum_limit=0, bb_limit=0,
        )
        assert "tier-2" in cert.upper_evidence
        assert "partial pin sweep" in cert.upper_evidence
        assert cert.witness is None
        assert WITNESS_FREE_TOKEN in cert.upper_evidence
        assert cert.upper < w8.num_edges  # the partial sweep did tighten

    def test_witness_or_marker_holds_across_budgets(self, b4, b8):
        for net in (b4, b8, _path(9)):
            for seconds in (0, 0.001, None):
                cert = solve_with_fallback(net, budget=Budget(seconds))
                if cert.witness is None:
                    assert WITNESS_FREE_TOKEN in cert.upper_evidence
                else:
                    assert cert.witness.capacity == cert.upper

    def test_certificates_self_verify(self, b4):
        cert = solve_with_fallback(b4)
        report = cert.verify(b4)
        assert report.ok and "witness" in report.checks


class TestCacheRevalidation:
    """Tier-0 hits are re-checked independently, never trusted blindly."""

    def test_poisoned_cache_entry_is_rejected_and_recomputed(self, b4, tmp_path):
        cache = SolverCache(tmp_path)
        # An "exact" BW(B4) = 3 with no witness and no witness-free marker:
        # the cache's own gating has nothing to recount, so only the
        # independent checker can refute it (Theorem 2.20 floor + the
        # witness-or-marker contract).
        cache.put_certificate(
            b4,
            {
                "quantity": f"BW({b4.name})",
                "lower": 3, "upper": 3,
                "lower_evidence": "tier-1 exhaustive enumeration (exact)",
                "upper_evidence": "tier-1 exhaustive enumeration (exact)",
            },
            witness_side=None,
        )
        assert cache.get_certificate(b4) is not None  # the poison is served
        with collecting(Collector()) as coll:
            cert = solve_with_fallback(b4, cache=cache)
        assert cert.lower == cert.upper == 4  # recomputed, not trusted
        assert coll.counters.get("verify.cache_rejected", 0) >= 1
        assert "tier-0 cache hit rejected by the independent checker" in (
            cert.upper_evidence
        )

    def test_clean_cache_hit_still_wins(self, b4, tmp_path):
        cache = SolverCache(tmp_path)
        solve_with_fallback(b4, cache=cache)  # populate
        with collecting(Collector()) as coll:
            cert = solve_with_fallback(b4, cache=cache)
        assert cert.lower == cert.upper == 4
        assert coll.counters.get("verify.cache_rejected", 0) == 0
        assert coll.counters.get("solve.tiers_run", 0) == 0  # pure tier-0
