"""The degradation cascade always returns a certified bound."""

import numpy as np
import pytest

from repro.core import solve_with_fallback
from repro.resilience import Budget, CancellationToken
from repro.topology import Network, butterfly, random_regular_graph


def _path(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


class TestExactTiers:
    def test_tier1_enumeration_on_a_path(self):
        cert = solve_with_fallback(_path(8))
        assert cert.lower == cert.upper == 1
        assert "tier-1" in cert.lower_evidence and "exact" in cert.lower_evidence
        assert cert.witness is not None and cert.witness.capacity == 1

    def test_tier1_on_b4_matches_the_paper(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.lower == cert.upper == 4  # BW(B4) = n = 4
        assert "tier-1" in cert.upper_evidence

    def test_tier2_layered_dp_on_b8(self, b8):
        # 32 nodes: enumeration skipped, layered DP exact.
        cert = solve_with_fallback(b8)
        assert cert.lower == cert.upper == 8  # BW(B8) = n = 8
        assert "tier-2" in cert.upper_evidence
        assert "tier-1 exhaustive enumeration skipped" in cert.lower_evidence

    def test_tier3_branch_and_bound_on_a_general_graph(self):
        net = random_regular_graph(26, 3, seed=1)
        cert = solve_with_fallback(net)
        assert cert.lower == cert.upper
        assert "tier-3" in cert.upper_evidence
        assert "tier-2 layered DP skipped" in cert.upper_evidence

    def test_witness_is_a_balanced_cut(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.witness.is_bisection()
        assert cert.witness.capacity == cert.upper


class TestDegradation:
    def test_expired_budget_still_certifies(self, b4):
        """Acceptance: exact solve under an already-expired budget."""
        cert = solve_with_fallback(b4, budget=Budget(0))
        assert cert.lower <= cert.upper
        assert cert.lower == 0 and cert.upper == b4.num_edges
        assert "tier-5" in cert.lower_evidence
        assert "budget" in cert.lower_evidence
        assert "tier-1" in cert.lower_evidence  # skip reasons are recorded

    def test_cancellation_token_degrades_too(self, b4):
        token = CancellationToken()
        token.cancel()
        cert = solve_with_fallback(b4, budget=Budget(None, token=token))
        assert cert.lower == 0 and cert.upper == b4.num_edges

    def test_heuristic_tier_tightens_large_instances(self, b16):
        # B16: 80 nodes and layer width 16 > 12, so every exact tier is out
        # of reach and the heuristics must carry the upper bound.
        cert = solve_with_fallback(b16)
        assert cert.lower <= cert.upper < b16.num_edges
        assert "tier-4" in cert.upper_evidence
        assert cert.witness is not None
        assert cert.witness.capacity == cert.upper

    def test_partial_enumeration_contributes_an_upper_bound(self):
        # Expire mid-sweep: small batches, a clock that dies after 3 polls.
        t = {"v": 0.0}

        def clock():
            t["v"] += 1.0
            return t["v"]

        net = _path(14)
        budget = Budget(3.5, clock=clock, max_batch_bits=8)
        cert = solve_with_fallback(net, budget=budget, bb_limit=0)
        assert cert.lower <= cert.upper
        assert "truncated" in cert.upper_evidence or "tier-" in cert.upper_evidence

    def test_quantity_names_the_network(self, b4):
        cert = solve_with_fallback(b4, budget=Budget(0))
        assert b4.name in cert.quantity
