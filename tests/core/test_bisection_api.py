"""Certified bisection-width API."""

import math

import pytest

from repro.core import (
    bisection_width,
    butterfly_bisection_width,
    ccc_bisection_width,
    theorem_220_interval,
    wrapped_bisection_width,
)
from repro.topology import butterfly, complete_graph, hypercube, wrapped_butterfly


class TestButterfly:
    @pytest.mark.parametrize("n,expected", [(2, 2), (4, 4), (8, 8)])
    def test_exact_small(self, n, expected):
        cert = butterfly_bisection_width(n)
        assert cert.is_exact and cert.value == expected
        assert cert.witness is not None and cert.witness.capacity == expected

    def test_interval_medium(self):
        cert = butterfly_bisection_width(1024)
        assert not cert.is_exact
        assert cert.lower >= 512
        assert cert.upper < 1024  # Theorem 2.20: below folklore
        assert cert.witness.capacity == cert.upper
        assert cert.witness.is_bisection()

    def test_mos_lower_bound_used(self):
        cert = butterfly_bisection_width(4096)
        floor_c = 2 * (math.sqrt(2) - 1) * 4096
        assert cert.lower > floor_c  # strictly above the Theorem 2.20 floor

    def test_plan_only_for_huge(self):
        cert = butterfly_bisection_width(1 << 14, materialize=False)
        assert cert.witness is None
        assert cert.lower <= cert.upper < (1 << 14)

    def test_theorem_interval(self):
        lo, hi = theorem_220_interval(100)
        assert lo == pytest.approx(82.84, abs=0.01)
        assert hi == pytest.approx(100.0)


class TestWrapped:
    @pytest.mark.parametrize("n", [4, 8])
    def test_exact_small(self, n):
        cert = wrapped_bisection_width(n)
        assert cert.is_exact and cert.value == n

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_exact_large_via_lemma(self, n):
        cert = wrapped_bisection_width(n)
        assert cert.is_exact and cert.value == n
        assert cert.witness.capacity == n


class TestCCC:
    @pytest.mark.parametrize("n", [4, 8])
    def test_exact_small(self, n):
        cert = ccc_bisection_width(n)
        assert cert.is_exact and cert.value == n // 2

    @pytest.mark.parametrize("n", [16, 64])
    def test_exact_large_via_lemma(self, n):
        cert = ccc_bisection_width(n)
        assert cert.is_exact and cert.value == n // 2


class TestGenericAPI:
    def test_layered_network_exact(self, b8):
        cert = bisection_width(b8)
        assert cert.is_exact and cert.value == 8

    def test_small_arbitrary_exact(self):
        cert = bisection_width(complete_graph(6))
        assert cert.is_exact and cert.value == 9

    def test_heuristic_interval(self):
        q = hypercube(6)  # 64 nodes: beyond enumeration, not layered
        cert = bisection_width(q)
        assert cert.lower <= 32 <= cert.upper
        assert cert.witness is not None
