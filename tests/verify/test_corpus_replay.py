"""Tier-1 regression replay of the checked-in shrunk fuzz corpus.

Every case in ``tests/corpus/`` runs through the full differential
oracle (solvers vs enumeration vs the independent checker).  A failure
here means a past disagreement has resurfaced — reproduce it with
``repro-butterfly fuzz`` using the seed recorded in the case's
``origin`` field (see docs/testing.md).
"""

from pathlib import Path

import pytest

from repro.verify import fuzz

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
CASES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(CASES) >= 20, "the checked-in corpus shrank below 20 cases"


def test_corpus_covers_every_family():
    families = {fuzz.load_case(p).spec["family"] for p in CASES}
    assert {"bn", "wn", "ccc", "mos", "torus", "mesh", "fattree", "fbfly",
            "generic"} <= families


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_replay(path):
    case = fuzz.load_case(path)
    problems = fuzz.replay_case(case)
    assert problems == [], f"{case.case_id} ({case.note}): {problems}"
