"""The differential fuzzer: determinism, oracles, shrinking, corpus I/O."""

import numpy as np

from repro.topology import butterfly
from repro.topology.base import Network
from repro.verify import fuzz


class TestGenerateInstance:
    def test_deterministic_per_seed(self):
        for i in range(10):
            a = fuzz.generate_instance(np.random.default_rng((7, i)))
            b = fuzz.generate_instance(np.random.default_rng((7, i)))
            assert a[0].edge_digest == b[0].edge_digest
            assert a[2] == b[2]
            if a[1] is None:
                assert b[1] is None
            else:
                np.testing.assert_array_equal(a[1], b[1])

    def test_instances_stay_small(self):
        for i in range(30):
            net, counted, _ = fuzz.generate_instance(
                np.random.default_rng((11, i))
            )
            assert 2 <= net.num_nodes <= 16
            if counted is not None:
                assert len(counted) >= 1
                assert counted.max() < net.num_nodes


class TestDifferentialCheck:
    def test_pristine_butterfly_agrees(self):
        assert fuzz.differential_check(butterfly(4)) == []

    def test_counted_set_agrees(self):
        net = butterfly(4)
        assert fuzz.differential_check(net, net.inputs()) == []


class TestShrink:
    def test_shrinks_to_a_minimal_failing_instance(self):
        # Synthetic oracle: "fails" whenever any edge survives.  The
        # greedy pass must reach a 2-node single-edge instance.
        net, counted = fuzz.shrink_instance(
            butterfly(2), None, lambda cand, _: cand.num_edges >= 1
        )
        assert net.num_nodes == 2
        assert net.num_edges == 1
        assert counted is None

    def test_counted_indices_are_remapped(self):
        net0 = Network(list(range(5)), [(i, i + 1) for i in range(4)],
                       name="path5")
        counted0 = np.array([0, 4])

        def failing(cand, counted):
            return cand.num_edges >= 1 and counted is not None

        net, counted = fuzz.shrink_instance(net0, counted0, failing)
        assert counted is not None and len(counted) == 2
        assert all(0 <= c < net.num_nodes for c in counted)

    def test_respects_the_check_budget(self):
        calls = {"n": 0}

        def failing(cand, _):
            calls["n"] += 1
            return True

        fuzz.shrink_instance(butterfly(4), None, failing, max_checks=10)
        assert calls["n"] <= 10


class TestCorpus:
    def test_case_round_trip(self, tmp_path):
        net = butterfly(4)
        case = fuzz.case_from_network(net, net.inputs(), note="B4 inputs")
        path = fuzz.save_case(tmp_path, case)
        loaded = fuzz.load_case(path)
        assert loaded == case
        assert loaded.network().edge_digest == net.edge_digest
        assert fuzz.replay_case(loaded) == []

    def test_generic_case_forgets_the_family(self, tmp_path):
        case = fuzz.case_from_network(butterfly(2), generic=True, note="")
        assert case.spec["family"] == "generic"
        loaded = fuzz.load_case(fuzz.save_case(tmp_path, case))
        assert loaded.network().edge_digest == butterfly(2).edge_digest

    def test_load_corpus_sorted(self, tmp_path):
        for n in (2, 4):
            fuzz.save_case(tmp_path, fuzz.case_from_network(butterfly(n)))
        cases = fuzz.load_corpus(tmp_path)
        assert [c.case_id for c in cases] == sorted(c.case_id for c in cases)
        assert len(cases) == 2


class TestCampaign:
    def test_smoke_campaign_is_clean_and_deterministic(self, tmp_path):
        a = fuzz.run_campaign(seed=3, runs=6, corpus_dir=tmp_path)
        assert a.ok and a.failures == [] and a.runs == 6
        assert list(tmp_path.iterdir()) == []  # nothing failed, nothing saved
        b = fuzz.run_campaign(seed=3, runs=6)
        assert b.to_dict() == a.to_dict()
