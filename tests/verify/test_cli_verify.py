"""End-to-end ``solve --certificate`` → ``verify`` → ``fuzz`` CLI flows.

This is the CI-exercised acceptance path: a pristine certificate passes,
a deliberately corrupted one (flipped width, flipped witness bits) is
REJECTED with a non-zero exit.
"""

import json

import pytest

from repro.cli import main
from repro.obs import validate_manifest


@pytest.fixture
def cert_path(tmp_path):
    path = tmp_path / "w4.cert.json"
    assert main(["solve", "wn", "4", "--no-cache",
                 "--certificate", str(path)]) == 0
    return path


class TestVerifyCertificate:
    def test_pristine_certificate_verifies(self, cert_path, capsys):
        assert main(["verify", str(cert_path)]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_flipped_width_is_rejected(self, cert_path, capsys):
        data = json.loads(cert_path.read_text())
        data["lower"] -= 1
        data["upper"] -= 1
        cert_path.write_text(json.dumps(data))
        assert main(["verify", str(cert_path)]) == 1
        err = capsys.readouterr().err
        assert "REJECTED" in err and "recounted capacity" in err

    def test_flipped_witness_bits_are_rejected(self, cert_path, capsys):
        data = json.loads(cert_path.read_text())
        bits = list(data["witness"])
        bits[0] = "1" if bits[0] == "0" else "0"
        bits[1] = "1" if bits[1] == "0" else "0"
        data["witness"] = "".join(bits)
        cert_path.write_text(json.dumps(data))
        assert main(["verify", str(cert_path)]) == 1
        assert "REJECTED" in capsys.readouterr().err

    def test_drifted_network_spec_is_rejected(self, cert_path, capsys):
        data = json.loads(cert_path.read_text())
        data["network"]["edge_digest"] = "0" * 16
        cert_path.write_text(json.dumps(data))
        assert main(["verify", str(cert_path)]) == 1
        assert "REJECTED" in capsys.readouterr().err

    def test_unreadable_path_errors(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "missing.json")]) == 2

    def test_manifest_from_solve_trace_verifies(self, tmp_path, capsys):
        manifest = tmp_path / "run.json"
        assert main(["solve", "bn", "4", "--no-cache",
                     "--trace", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["verify", str(manifest)]) == 0
        assert "verify: OK" in capsys.readouterr().out


class TestFuzzCommand:
    def test_smoke_fuzz_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "1", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "disagreements=0" in out

    def test_fuzz_writes_a_valid_manifest(self, tmp_path, capsys):
        trace = tmp_path / "fuzz.json"
        assert main(["fuzz", "--seed", "2", "--runs", "3",
                     "--corpus", str(tmp_path / "corpus"),
                     "--trace", str(trace)]) == 0
        manifest = json.loads(trace.read_text())
        validate_manifest(manifest)
        assert manifest["result"]["disagreements"] == 0

    def test_stats_reads_a_fuzz_manifest(self, tmp_path, capsys):
        trace = tmp_path / "fuzz.json"
        assert main(["fuzz", "--seed", "2", "--runs", "3",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        assert "disagreements=0" in capsys.readouterr().out
