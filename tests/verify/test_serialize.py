"""Certificate JSON round-trips and drift rejection."""

import json

import numpy as np
import pytest

from repro.core import solve_with_fallback
from repro.topology import (
    butterfly,
    cube_connected_cycles,
    mesh_of_stars,
    wrapped_butterfly,
)
from repro.topology.base import Network
from repro.verify import (
    CERTIFICATE_FORMAT,
    check_certificate,
    load_certificate,
    network_from_spec,
    network_spec,
    write_certificate,
)


@pytest.mark.parametrize(
    "net",
    [
        butterfly(4),
        wrapped_butterfly(4),
        cube_connected_cycles(4),
        mesh_of_stars(2, 3),
        Network(list(range(4)), [(0, 1), (1, 2), (2, 3)], name="path4"),
    ],
    ids=lambda net: net.name,
)
def test_network_spec_round_trip(net):
    rebuilt = network_from_spec(network_spec(net))
    assert rebuilt.num_nodes == net.num_nodes
    assert rebuilt.edge_digest == net.edge_digest


def test_drifted_spec_is_rejected():
    spec = network_spec(butterfly(4))
    spec["edge_digest"] = "0" * len(spec["edge_digest"])
    with pytest.raises(ValueError, match="drift"):
        network_from_spec(spec)


def test_unknown_family_is_rejected():
    with pytest.raises(ValueError, match="unknown network family"):
        network_from_spec({"family": "klein-bottle", "num_nodes": 4})


def test_certificate_round_trip_still_verifies(tmp_path):
    net = butterfly(4)
    cert = solve_with_fallback(net)
    path = write_certificate(tmp_path / "b4.json", net, cert)
    loaded_net, fields = load_certificate(path)
    assert fields["quantity"] == cert.quantity
    assert fields["lower"] == cert.lower and fields["upper"] == cert.upper
    np.testing.assert_array_equal(fields["witness_side"], cert.witness.side)
    assert check_certificate(loaded_net, fields).ok


def test_tampered_file_is_rejected_by_the_checker(tmp_path):
    net = butterfly(4)
    path = write_certificate(tmp_path / "b4.json", net, solve_with_fallback(net))
    data = json.loads(path.read_text())
    data["lower"] -= 1
    data["upper"] -= 1
    path.write_text(json.dumps(data))
    loaded_net, fields = load_certificate(path)
    assert not check_certificate(loaded_net, fields).ok


def test_wrong_format_marker_is_rejected(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something/else"}))
    with pytest.raises(ValueError, match=CERTIFICATE_FORMAT):
        load_certificate(path)
