"""The independent certificate checker: first-principles recounting only."""

import numpy as np
import pytest

from repro.core import solve_with_fallback
from repro.cuts import cut_profile
from repro.topology import butterfly, cube_connected_cycles, wrapped_butterfly
from repro.topology.mesh_of_stars import mesh_of_stars
from repro.verify import (
    WITNESS_FREE_TOKEN,
    VerificationError,
    check_certificate,
    check_cut,
    check_profile,
    recount_capacity,
)


@pytest.fixture
def b4():
    return butterfly(4)


class TestRecount:
    def test_matches_a_hand_count(self, b4):
        side = np.zeros(b4.num_nodes, dtype=bool)
        side[0] = True  # a degree-2 input node: exactly its 2 edges cross
        assert recount_capacity(b4, side) == 2

    def test_agrees_with_the_kernel_everywhere(self, b4):
        rng = np.random.default_rng(0)
        for _ in range(20):
            side = rng.random(b4.num_nodes) < 0.5
            assert recount_capacity(b4, side) == b4.cut_capacity(side)


class TestCheckCut:
    def test_clean_cut_passes(self, b4):
        side = np.arange(b4.num_nodes) < b4.num_nodes // 2
        cap = recount_capacity(b4, side)
        assert check_cut(b4, side, expected_capacity=cap,
                         require_bisection=True) == []

    def test_flipped_capacity_is_caught(self, b4):
        side = np.arange(b4.num_nodes) < b4.num_nodes // 2
        cap = recount_capacity(b4, side)
        problems = check_cut(b4, side, expected_capacity=cap - 1)
        assert any("recounted capacity" in p for p in problems)

    def test_unbalanced_bisection_is_caught(self, b4):
        side = np.zeros(b4.num_nodes, dtype=bool)
        side[0] = True
        problems = check_cut(b4, side, require_bisection=True)
        assert any("not a bisection" in p for p in problems)

    def test_counted_in_mismatch_is_caught(self, b4):
        side = np.arange(b4.num_nodes) < b4.num_nodes // 2
        problems = check_cut(b4, side, counted=b4.inputs(), expected_counted_in=0)
        assert any("counted nodes in S" in p for p in problems)

    def test_wrong_shape_is_caught(self, b4):
        problems = check_cut(b4, np.array([True, False]))
        assert any("shape" in p for p in problems)


class TestCheckCertificate:
    def test_cascade_output_verifies(self, b4):
        cert = solve_with_fallback(b4)
        report = check_certificate(b4, cert)
        assert report.ok, report.problems
        assert "witness" in report.checks
        assert "theorem-2.20" in report.checks

    def test_verify_hook_on_the_dataclass(self, b4):
        cert = solve_with_fallback(b4)
        assert cert.verify(b4).ok
        # Without the network only interval sanity applies.
        assert cert.verify().ok

    def test_flipped_width_is_rejected(self, b4):
        cert = solve_with_fallback(b4)
        bad = {
            "quantity": cert.quantity,
            "lower": cert.lower - 1, "upper": cert.upper - 1,
            "lower_evidence": cert.lower_evidence,
            "upper_evidence": cert.upper_evidence,
            "witness_side": cert.witness.side,
        }
        report = check_certificate(b4, bad)
        assert not report.ok
        assert any("recounted capacity" in p for p in report.problems)

    def test_out_of_orbit_witness_is_rejected(self, b4):
        # A witness from a *different* cut than the claimed capacity: take
        # the optimal side and flip two nodes on the same side.
        cert = solve_with_fallback(b4)
        for i in np.flatnonzero(cert.witness.side):
            for o in np.flatnonzero(~cert.witness.side):
                side = cert.witness.side.copy()
                side[i], side[o] = False, True
                if recount_capacity(b4, side) != cert.upper:
                    break
            else:
                continue
            break
        else:
            pytest.fail("every single swap preserved optimality")
        bad = dict(quantity=cert.quantity, lower=cert.lower, upper=cert.upper,
                   lower_evidence=cert.lower_evidence,
                   upper_evidence=cert.upper_evidence, witness_side=side)
        assert not check_certificate(b4, bad).ok

    def test_missing_witness_without_marker_is_rejected(self, b4):
        bad = {
            "quantity": f"BW({b4.name})", "lower": 0, "upper": 4,
            "lower_evidence": "tier-5 trivial floor",
            "upper_evidence": "tier-3 branch and bound (truncated)",
            "witness_side": None,
        }
        report = check_certificate(b4, bad)
        assert any(WITNESS_FREE_TOKEN in p for p in report.problems)

    def test_witness_free_marker_is_honored(self, b4):
        ok = {
            "quantity": f"BW({b4.name})", "lower": 0, "upper": b4.num_edges,
            "lower_evidence": "tier-5 trivial floor",
            "upper_evidence": f"tier-5 trivial ceiling ({WITNESS_FREE_TOKEN})",
            "witness_side": None,
        }
        assert check_certificate(b4, ok).ok

    def test_interval_inversion_is_rejected(self, b4):
        bad = {"quantity": "BW(B4)", "lower": 5, "upper": 4,
               "lower_evidence": "", "upper_evidence": "", "witness_side": None}
        report = check_certificate(b4, bad)
        assert any("exceeds upper" in p for p in report.problems)

    def test_upper_above_edge_count_is_rejected(self, b4):
        bad = {"quantity": f"BW({b4.name})", "lower": 0,
               "upper": b4.num_edges + 1,
               "lower_evidence": "", "upper_evidence": "", "witness_side": None}
        report = check_certificate(b4, bad)
        assert any("exceeds |E|" in p for p in report.problems)

    def test_theorem_220_floor_refutes_a_too_small_exact_width(self, b4):
        # An "exact" BW(B4) = 3 contradicts the strict 2(sqrt2-1)n floor.
        bad = {"quantity": f"BW({b4.name})", "lower": 3, "upper": 3,
               "lower_evidence": "forged", "upper_evidence": "forged",
               "witness_side": None}
        report = check_certificate(b4, bad)
        assert any("Theorem 2.20" in p for p in report.problems)

    def test_lemma_32_pins_wrapped_width(self):
        w4 = wrapped_butterfly(4)
        bad = {"quantity": f"BW({w4.name})", "lower": 5, "upper": 5,
               "lower_evidence": "forged", "upper_evidence": "forged",
               "witness_side": None}
        report = check_certificate(w4, bad)
        assert any("Lemma 3.2" in p for p in report.problems)

    def test_lemma_33_pins_ccc_width(self):
        c4 = cube_connected_cycles(4)
        bad = {"quantity": f"BW({c4.name})", "lower": 3, "upper": 3,
               "lower_evidence": "forged", "upper_evidence": "forged",
               "witness_side": None}
        report = check_certificate(c4, bad)
        assert any("Lemma 3.3" in p for p in report.problems)

    def test_raise_for_problems(self, b4):
        bad = {"quantity": "BW(B4)", "lower": 3, "upper": 3,
               "lower_evidence": "forged", "upper_evidence": "forged",
               "witness_side": None}
        with pytest.raises(VerificationError, match="Theorem 2.20"):
            check_certificate(b4, bad).raise_for_problems()


class TestCheckProfile:
    def test_enumerated_profile_verifies(self, b4):
        assert check_profile(b4, cut_profile(b4)).ok

    def test_mos_m2_profile_verifies(self):
        m = mesh_of_stars(3, 3)
        assert check_profile(m, cut_profile(m, counted=m.m2())).ok

    def test_tampered_value_is_caught(self, b4):
        prof = cut_profile(b4)
        values = prof.values.copy()
        values[b4.num_nodes // 2] -= 1
        bad = {"counted": prof.counted, "values": values,
               "witnesses": prof.witnesses, "complete": True}
        report = check_profile(b4, bad)
        assert any("recounted capacity" in p for p in report.problems)

    def test_tampered_witness_is_caught(self, b4):
        prof = cut_profile(b4)
        witnesses = prof.witnesses.copy()
        c = b4.num_nodes // 2
        witnesses[c] = int(witnesses[c]) ^ 0b11  # move two nodes across
        bad = {"counted": prof.counted, "values": prof.values,
               "witnesses": witnesses, "complete": True}
        assert not check_profile(b4, bad).ok

    def test_broken_complement_symmetry_is_caught(self, b4):
        prof = cut_profile(b4)
        values = prof.values.copy()
        values[1] += 1  # also breaks the witness recount at c=1
        bad = {"counted": prof.counted, "values": values,
               "witnesses": prof.witnesses, "complete": True}
        report = check_profile(b4, bad)
        assert any("complement asymmetry" in p for p in report.problems)

    def test_nonzero_trivial_ends_are_caught(self, b4):
        prof = cut_profile(b4)
        m = len(prof.counted)
        values = prof.values.copy()
        values[0] = values[m] = 2
        bad = {"counted": prof.counted, "values": values,
               "witnesses": prof.witnesses, "complete": True}
        report = check_profile(b4, bad)
        assert any("trivial entries" in p for p in report.problems)
