"""RL003: edge loops on hot paths, and justification-gated suppression."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL003"})}

LOOP = '''
"""Doc."""

def capacity(net, side):
    """Doc."""
    total = 0
    for u, v in net.edges:
        total += side[u] != side[v]
    return total
'''

COMPREHENSION = '''
"""Doc."""

def endpoints(net):
    """Doc."""
    return [u for u, v in net.edges]
'''


class TestHotPath:
    def test_loop_in_hot_module_flagged(self):
        findings = run_lint({"src/repro/cuts/m.py": LOOP}, **_SELECT)
        assert rule_ids(findings) == {"RL003"}

    def test_comprehension_flagged(self):
        findings = run_lint({"src/repro/cuts/m.py": COMPREHENSION}, **_SELECT)
        assert rule_ids(findings) == {"RL003"}

    def test_cold_module_unrestricted(self):
        assert run_lint({"src/repro/routing/m.py": LOOP}, **_SELECT) == []

    def test_topology_base_is_hot(self):
        findings = run_lint({"src/repro/topology/base.py": LOOP}, **_SELECT)
        assert rule_ids(findings) == {"RL003"}


class TestSuppression:
    def test_justified_suppression_accepted(self):
        src = LOOP.replace(
            "for u, v in net.edges:",
            "for u, v in net.edges:  "
            "# repro-lint: disable=RL003 -- cold export path",
        )
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_bare_suppression_rejected(self):
        src = LOOP.replace(
            "for u, v in net.edges:",
            "for u, v in net.edges:  # repro-lint: disable=RL003",
        )
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert len(findings) == 1
        assert "justification" in findings[0].message

    def test_standalone_comment_covers_next_line(self):
        src = LOOP.replace(
            "    for u, v in net.edges:",
            "    # repro-lint: disable=RL003 -- cold export path\n"
            "    for u, v in net.edges:",
        )
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []
