"""Shared helpers for the repro.lint test suite.

Fixture sources are linted in-memory via :func:`repro.lint.lint_sources`;
paths are chosen inside a fake ``src/repro/`` tree so the rules see them as
package modules.
"""

from __future__ import annotations

from repro.lint import LintConfig, lint_sources


def run_lint(sources: dict[str, str], **config_overrides) -> list:
    """Lint in-memory sources with defaults overridden as given."""
    config = LintConfig(**config_overrides) if config_overrides else LintConfig()
    return lint_sources(sources, config)


def rule_ids(findings) -> set[str]:
    return {f.rule_id for f in findings}
