"""RL005: writes to Network/Cut private state outside the owner class."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL005"})}


def _lint(body: str):
    return run_lint({"src/repro/analysis/m.py": f'"""Doc."""\n{body}\n'}, **_SELECT)


class TestTriggers:
    def test_module_level_write(self):
        assert rule_ids(_lint("net._edges = new_edges")) == {"RL005"}

    def test_subscript_store(self):
        assert rule_ids(_lint("def f(cut):\n    cut.side[0] = True")) == {"RL005"}

    def test_augmented_assignment(self):
        assert rule_ids(_lint("def f(net):\n    net._labels += ['x']")) == {"RL005"}

    def test_write_from_wrong_class(self):
        src = "class Flipper:\n    def flip(self, cut):\n        cut._side = ~cut._side"
        assert rule_ids(_lint(src)) == {"RL005"}

    def test_delete(self):
        assert rule_ids(_lint("def f(net):\n    del net._index")) == {"RL005"}


class TestClean:
    def test_owner_class_may_write(self):
        src = (
            "class Network:\n"
            "    def __init__(self, edges):\n"
            "        self._edges = edges\n"
            "        self._index = {}\n"
        )
        assert _lint(src) == []

    def test_cut_owns_side(self):
        src = (
            "class Cut:\n"
            "    def __init__(self, side):\n"
            "        self._side = side\n"
        )
        assert _lint(src) == []

    def test_unrelated_attributes_fine(self):
        assert _lint("def f(net):\n    net.name = 'x'") == []

    def test_suppression(self):
        assert _lint(
            "cut.side[0] = True  # repro-lint: disable=RL005 -- negative test"
        ) == []
