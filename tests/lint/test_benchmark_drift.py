"""RL006 benchmark-drift: committed results vs the paper constants."""

import json

from repro.lint.findings import Severity
from repro.lint.rules.benchmark_drift import drift_findings

from .conftest import run_lint

GOOD_THM220 = """\
         n        lower        upper  upper/n  evidence
         4            4            4   1.0000  exact (DP)
      1024          849         1008   0.9844  verified cut < n
  log n =    20: capacity/n = 0.9375 (j = 8, a = 5, b = 5)
theorem limit 2(sqrt2 - 1) = 0.8284; every row sits strictly above it
"""

GOOD_LEMMA32 = """\
     n     BW(Wn)  paper  evidence
     4          4      4  exact DP
    16         16     16  Lemma 3.2 + verified column cut
"""

GOOD_LEMMA33 = """\
     n   BW(CCCn)  paper n/2  evidence
     8          4          4  exact DP
    16          8          8  Wn embedding / dimension cut

W16 -> CCC16 embedding: congestion 2 => BW(CCC16) >= 8
"""


def _results_dir(tmp_path, thm220=GOOD_THM220, l32=GOOD_LEMMA32, l33=GOOD_LEMMA33):
    d = tmp_path / "results"
    d.mkdir()
    (d / "thm220_bisection_bn.txt").write_text(thm220)
    (d / "lemma32_wn.txt").write_text(l32)
    (d / "lemma33_ccc.txt").write_text(l33)
    return d


class TestCleanResults:
    def test_committed_style_numbers_pass(self, tmp_path):
        assert drift_findings(_results_dir(tmp_path)) == []

    def test_missing_files_are_ignored(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert drift_findings(empty) == []

    def test_unparsable_file_is_ignored(self, tmp_path):
        d = _results_dir(tmp_path, thm220="no rows here\njust prose\n")
        assert drift_findings(d) == []


class TestDrift:
    def test_inverted_interval_flagged(self, tmp_path):
        bad = GOOD_THM220.replace(
            "      1024          849         1008   0.9844",
            "      1024         1020         1008   0.9844",
        )
        found = drift_findings(_results_dir(tmp_path, thm220=bad))
        assert any("inverted" in f.message for f in found)
        assert all(f.rule_id == "RL006" for f in found)
        assert all(f.severity is Severity.WARNING for f in found)

    def test_ratio_below_theorem_limit_flagged(self, tmp_path):
        bad = GOOD_THM220.replace("0.9844", "0.8200")
        found = drift_findings(_results_dir(tmp_path, thm220=bad))
        assert any("Theorem 2.20" in f.message for f in found)

    def test_lower_above_folklore_ceiling_flagged(self, tmp_path):
        bad = GOOD_THM220.replace(
            "      1024          849         1008   0.9844",
            "      1024         1500         2000   1.9531",
        )
        found = drift_findings(_results_dir(tmp_path, thm220=bad))
        assert any("folklore ceiling" in f.message for f in found)

    def test_wn_drift_flagged_with_line_number(self, tmp_path):
        bad = GOOD_LEMMA32.replace("    16         16", "    16         15")
        found = drift_findings(_results_dir(tmp_path, l32=bad))
        assert len(found) == 1
        assert "Lemma 3.2" in found[0].message
        assert found[0].line == 3

    def test_ccc_drift_flagged(self, tmp_path):
        bad = GOOD_LEMMA33.replace("    16          8", "    16          9")
        found = drift_findings(_results_dir(tmp_path, l33=bad))
        assert len(found) == 1
        assert "Lemma 3.3" in found[0].message

    def test_checks_gate_on_the_claim_table(self, tmp_path):
        bad = GOOD_LEMMA32.replace("    16         16", "    16         15")
        d = _results_dir(tmp_path, l32=bad)
        assert drift_findings(d, claim_ids={"theorem-2.20"}) == []
        assert len(drift_findings(d, claim_ids={"lemma-3.2"})) == 1


def _json_doc(rows):
    return json.dumps({
        "version": 1, "kind": "repro-bench-result",
        "name": "thm220_bisection_bn", "rows": rows, "meta": {},
    })


GOOD_JSON_ROWS = [
    {"n": 4, "lower": 4, "upper": 4, "ratio": 1.0, "evidence": "exact (DP)"},
    {"n": 1024, "lower": 849, "upper": 1008, "ratio": 0.9844,
     "evidence": "verified cut < n"},
]


class TestJsonResults:
    def test_clean_json_rows_pass(self, tmp_path):
        d = _results_dir(tmp_path)
        (d / "thm220_bisection_bn.json").write_text(_json_doc(GOOD_JSON_ROWS))
        assert drift_findings(d) == []

    def test_json_preferred_over_text(self, tmp_path):
        # Text table is bad, JSON is clean: no findings, because the JSON
        # form is authoritative once present.
        bad_txt = GOOD_THM220.replace("0.9844", "0.8200")
        d = _results_dir(tmp_path, thm220=bad_txt)
        (d / "thm220_bisection_bn.json").write_text(_json_doc(GOOD_JSON_ROWS))
        assert drift_findings(d) == []

    def test_json_drift_flagged(self, tmp_path):
        rows = [dict(GOOD_JSON_ROWS[1], lower=1500, upper=1008, ratio=0.8)]
        d = _results_dir(tmp_path)
        path = d / "thm220_bisection_bn.json"
        path.write_text(_json_doc(rows))
        found = drift_findings(d)
        assert any("inverted" in f.message for f in found)
        assert any("folklore ceiling" in f.message for f in found)
        assert any("Theorem 2.20" in f.message for f in found)
        assert all(f.path == str(path) for f in found)

    def test_malformed_json_falls_back_to_text(self, tmp_path):
        bad_txt = GOOD_THM220.replace("0.9844", "0.8200")
        d = _results_dir(tmp_path, thm220=bad_txt)
        (d / "thm220_bisection_bn.json").write_text("{torn")
        found = drift_findings(d)
        assert any("Theorem 2.20" in f.message for f in found)

    def test_rows_missing_fields_are_skipped(self, tmp_path):
        rows = [{"n": 4, "lower": 4}, GOOD_JSON_ROWS[0]]
        d = _results_dir(tmp_path)
        (d / "thm220_bisection_bn.json").write_text(_json_doc(rows))
        assert drift_findings(d) == []

    def test_json_gates_on_the_claim_table(self, tmp_path):
        rows = [dict(GOOD_JSON_ROWS[0], ratio=0.5)]
        d = _results_dir(tmp_path)
        (d / "thm220_bisection_bn.json").write_text(_json_doc(rows))
        assert drift_findings(d, claim_ids={"lemma-3.2"}) == []
        assert len(drift_findings(d, claim_ids={"theorem-2.20"})) == 1


GOOD_FABRIC_ROWS = [
    {"family": "torus", "claim": "product-torus", "params": [6, 2],
     "lower": 12, "upper": 12, "want": 12, "evidence": "DP"},
    {"family": "mesh", "claim": "product-mesh", "params": [5, 3],
     "lower": 31, "upper": 31, "want": 31, "evidence": "prefix cut"},
    {"family": "fattree", "claim": "dc-fattree", "params": [6],
     "lower": 32, "upper": 32, "want": 32, "evidence": "root cut"},
    {"family": "fbfly", "claim": "dc-fbfly", "params": [4, 2],
     "lower": 16, "upper": 16, "want": 16, "evidence": "prefix cut"},
]


def _fabric_doc(rows):
    return json.dumps({
        "version": 1, "kind": "repro-bench-result",
        "name": "fabric_families", "rows": rows, "meta": {},
    })


class TestFabricResults:
    def test_clean_fabric_rows_pass(self, tmp_path):
        d = _results_dir(tmp_path)
        (d / "fabric_families.json").write_text(_fabric_doc(GOOD_FABRIC_ROWS))
        assert drift_findings(d) == []

    def test_closed_form_drift_flagged(self, tmp_path):
        rows = [dict(GOOD_FABRIC_ROWS[0], lower=11, upper=11)]
        d = _results_dir(tmp_path)
        (d / "fabric_families.json").write_text(_fabric_doc(rows))
        found = drift_findings(d)
        assert len(found) == 1
        assert "product-torus closed form says 12" in found[0].message

    def test_inverted_fabric_interval_flagged(self, tmp_path):
        rows = [dict(GOOD_FABRIC_ROWS[2], lower=33)]
        d = _results_dir(tmp_path)
        (d / "fabric_families.json").write_text(_fabric_doc(rows))
        found = drift_findings(d)
        assert any("inverted" in f.message for f in found)

    def test_rows_gate_on_their_own_claim(self, tmp_path):
        rows = [dict(GOOD_FABRIC_ROWS[0], upper=99, lower=99),
                dict(GOOD_FABRIC_ROWS[3], upper=99, lower=99)]
        d = _results_dir(tmp_path)
        (d / "fabric_families.json").write_text(_fabric_doc(rows))
        assert len(drift_findings(d, claim_ids={"product-torus"})) == 1
        assert len(drift_findings(d, claim_ids={"dc-fbfly"})) == 1
        assert drift_findings(d, claim_ids={"theorem-2.20"}) == []

    def test_odd_ary_fbfly_has_no_closed_form_check(self, tmp_path):
        rows = [{"family": "fbfly", "claim": "dc-fbfly", "params": [3, 2],
                 "lower": 7, "upper": 7, "want": None, "evidence": "exact"}]
        d = _results_dir(tmp_path)
        (d / "fabric_families.json").write_text(_fabric_doc(rows))
        assert drift_findings(d) == []


class TestProjectIntegration:
    def test_in_memory_fixtures_never_trigger_rl006(self):
        # The lint unit-test fixtures have no on-disk paths, so the rule
        # cannot find a benchmarks/results dir and must stay silent.
        findings = run_lint({
            "src/repro/cuts/mod.py":
                '"""Implements Lemma 3.2."""\n\nX = 1\n',
        })
        assert all(f.rule_id != "RL006" for f in findings)
