"""Reporters, the JSON schema consumed by CI, and CLI exit codes."""

from __future__ import annotations

import json

from repro.lint import Finding, Severity, all_rules, render_json, render_text
from repro.lint.cli import main as lint_main

from .conftest import run_lint, rule_ids

#: One fixture tree tripping every rule at once (the acceptance scenario).
#: ``bad.py`` trips the per-module rules; ``race.py`` + ``fallback.py``
#: trip the whole-program rules across a module boundary (RL010 needs a
#: hot loop reachable from the cascade entry, RL011 a source→sink flow,
#: RL012 a mutated closure submitted to the pool).
ALL_RULES_FIXTURE = {
    "src/repro/cuts/bad.py": (
        '"""Implements Lemma 9.9."""\n'
        "import repro.cli\n"
        "\n"
        "def f(net, side, k):\n"
        '    """Doc."""\n'
        "    total = 0.0\n"
        "    for u, v in net.edges:\n"
        "        total += side[u] != side[v]\n"
        "    for mask in range(1 << k):\n"
        "        total += mask\n"
        "    net._edges = None\n"
        "    return total == 0.5\n"
    ),
    "src/repro/cuts/race.py": (
        '"""Implements Lemma 9.9."""\n'
        "import time\n"
        "from ..resilience.supervise import supervised_map\n"
        "\n"
        "def sweep(cache, items):\n"
        "    acc = []\n"
        "    def task(x):\n"
        "        return acc, x\n"
        "    supervised_map(task, items, workers=2)\n"
        "    acc.extend(items)\n"
        '    cache.put_certificate("k", time.time())\n'
        "    return acc\n"
        "\n"
        "def churn(net):\n"
        "    while net:\n"
        "        net = sweep(None, [net])\n"
        "    return net\n"
    ),
    "src/repro/core/fallback.py": (
        '"""Implements Theorem 1."""\n'
        "from ..cuts.race import churn\n"
        "\n"
        "def solve_with_fallback(net):\n"
        '    """Doc."""\n'
        "    return churn(net)\n"
    ),
}


def test_all_static_rules_fire_on_fixture():
    findings = run_lint(ALL_RULES_FIXTURE)
    assert rule_ids(findings) >= {
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL008",
        "RL010", "RL011", "RL012",
    }


def test_syntax_error_becomes_rl000():
    findings = run_lint({"src/repro/cuts/broken.py": "def f(:\n"})
    assert rule_ids(findings) == {"RL000"}


class TestJson:
    def test_schema(self):
        findings = run_lint(ALL_RULES_FIXTURE)
        doc = json.loads(render_json(findings))
        assert doc["version"] == 1
        assert doc["summary"]["total"] == len(findings)
        assert sum(doc["summary"]["by_rule"].values()) == len(findings)
        for item in doc["findings"]:
            assert set(item) == {"rule", "path", "line", "col", "message", "severity"}
            assert isinstance(item["line"], int) and item["line"] >= 1
            assert item["severity"] in {"error", "warning", "info"}

    def test_empty_run(self):
        doc = json.loads(render_json([]))
        assert doc["findings"] == [] and doc["summary"]["total"] == 0


class TestText:
    def test_one_line_per_finding_plus_summary(self):
        f = Finding("a.py", 3, 0, "RL004", "msg", Severity.ERROR)
        out = render_text([f])
        assert "a.py:3:0: RL004 error: msg" in out
        assert "1 finding(s)" in out

    def test_clean_run(self):
        assert "no findings" in render_text([])


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "topology"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text('"""Doc."""\nX = 1\n')
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(ALL_RULES_FIXTURE["src/repro/cuts/bad.py"])
        assert lint_main([str(tmp_path / "src")]) == 1

    def test_json_output_parses(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(ALL_RULES_FIXTURE["src/repro/cuts/bad.py"])
        lint_main(["--format", "json", str(tmp_path / "src")])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] > 0

    def test_select_restricts_rules(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(ALL_RULES_FIXTURE["src/repro/cuts/bad.py"])
        lint_main(["--format", "json", "--select", "RL005", str(tmp_path / "src")])
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["summary"]["by_rule"]) == {"RL005"}

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                    "RL007", "RL008", "RL009", "RL010", "RL011", "RL012"):
            assert rid in out


def test_registry_has_the_twelve_shipped_rules():
    assert set(all_rules()) == {
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012",
    }
