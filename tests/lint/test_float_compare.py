"""RL004: exact equality on float expressions and paper constants."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL004"})}


def _lint(body: str):
    return run_lint({"src/repro/analysis/m.py": f'"""Doc."""\n{body}\n'}, **_SELECT)


class TestTriggers:
    def test_float_literal(self):
        assert rule_ids(_lint("ok = x == 0.5")) == {"RL004"}

    def test_paper_constant_expression(self):
        assert rule_ids(_lint("import math\nok = y != math.sqrt(2) - 1")) == {"RL004"}

    def test_float_attribute(self):
        assert rule_ids(_lint("import math\nok = z == math.pi")) == {"RL004"}

    def test_not_equals(self):
        assert rule_ids(_lint("ok = 2.0 != w")) == {"RL004"}


class TestClean:
    def test_integer_compare_fine(self):
        assert _lint("ok = x == 1") == []

    def test_isclose_fine(self):
        assert _lint("import math\nok = math.isclose(x, 0.5)") == []

    def test_approx_comparator_fine(self):
        assert _lint("ok = x == approx(1.0)") == []

    def test_ordering_comparisons_fine(self):
        assert _lint("ok = x >= 0.5") == []

    def test_suppression(self):
        assert _lint(
            "ok = x == 0.0  # repro-lint: disable=RL004 -- exact-zero sentinel"
        ) == []
