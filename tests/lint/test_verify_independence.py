"""RL009 verify-independence: solvers must not import the checker."""

from .conftest import rule_ids, run_lint

_SELECT = {"select": frozenset({"RL009"})}


class TestRL009:
    def test_module_level_import_in_a_solver_is_flagged(self):
        findings = run_lint(
            {"src/repro/cuts/m.py": "from repro.verify import check_certificate\n"},
            **_SELECT,
        )
        assert rule_ids(findings) == {"RL009"}
        assert all(f.severity.value == "warning" for f in findings)

    def test_plain_import_is_flagged(self):
        findings = run_lint(
            {"src/repro/perf/m.py": "import repro.verify.checker\n"},
            **_SELECT,
        )
        assert rule_ids(findings) == {"RL009"}

    def test_function_level_import_is_flagged(self):
        src = (
            "def solve():\n"
            "    from repro.verify.checker import recount_capacity\n"
            "    return recount_capacity\n"
        )
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL009"}

    def test_relative_import_is_flagged(self):
        findings = run_lint(
            {"src/repro/cuts/m.py": "from ..verify import checker\n"},
            **_SELECT,
        )
        assert rule_ids(findings) == {"RL009"}

    def test_from_repro_import_verify_is_flagged(self):
        findings = run_lint(
            {"src/repro/perf/m.py": "from repro import verify\n"},
            **_SELECT,
        )
        assert rule_ids(findings) == {"RL009"}

    def test_non_solver_packages_may_import_verify(self):
        findings = run_lint(
            {
                "src/repro/core/m.py": "from repro.verify import checker\n",
                "src/repro/cli_extra/m.py": "import repro.verify\n",
            },
            **_SELECT,
        )
        assert findings == []

    def test_other_imports_in_solvers_are_fine(self):
        findings = run_lint(
            {"src/repro/cuts/m.py": "from repro.topology import butterfly\n"},
            **_SELECT,
        )
        assert findings == []
