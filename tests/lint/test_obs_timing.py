"""RL007 obs-timing: raw monotonic clocks in the instrumented packages."""

from repro.lint.findings import Severity

from .conftest import run_lint, rule_ids

_DOC = '"""Implements Lemma 3.2."""\n'


def _rl007(findings):
    return [f for f in findings if f.rule_id == "RL007"]


class TestFlagged:
    def test_time_monotonic_attribute_in_cuts(self):
        found = _rl007(run_lint({
            "src/repro/cuts/solver.py":
                _DOC + "import time\n\nT0 = time.monotonic()\n",
        }))
        assert len(found) == 1
        assert "time.monotonic" in found[0].message
        assert "obs.trace" in found[0].message
        assert found[0].severity is Severity.WARNING

    def test_perf_counter_in_routing(self):
        found = _rl007(run_lint({
            "src/repro/routing/sim.py":
                _DOC + "import time\n\ndef f():\n    return time.perf_counter()\n",
        }))
        assert len(found) == 1

    def test_ns_variants_flagged(self):
        found = _rl007(run_lint({
            "src/repro/cuts/a.py":
                _DOC + "import time\n\nA = time.monotonic_ns()\n"
                "B = time.perf_counter_ns()\n",
        }))
        assert len(found) == 2

    def test_from_import_flagged(self):
        found = _rl007(run_lint({
            "src/repro/routing/sim.py":
                _DOC + "from time import perf_counter\n",
        }))
        assert len(found) == 1
        assert "perf_counter" in found[0].message

    def test_clock_reference_without_call_flagged(self):
        # Passing the clock as a default argument is still a bypass.
        found = _rl007(run_lint({
            "src/repro/resilience/timer.py":
                _DOC + "import time\n\ndef f(clock=time.monotonic):\n"
                "    return clock()\n",
        }))
        assert len(found) == 1


class TestNotFlagged:
    def test_outside_scoped_packages(self):
        findings = run_lint({
            "src/repro/analysis/fit.py":
                _DOC + "import time\n\nT = time.monotonic()\n",
        })
        assert "RL007" not in rule_ids(findings)

    def test_time_time_not_flagged(self):
        # Wall-clock time.time() is a different (RL-free) concern.
        findings = run_lint({
            "src/repro/cuts/a.py": _DOC + "import time\n\nT = time.time()\n",
        })
        assert "RL007" not in rule_ids(findings)

    def test_time_sleep_not_flagged(self):
        findings = run_lint({
            "src/repro/resilience/pool.py":
                _DOC + "import time\n\ntime.sleep(0.1)\n",
        })
        assert "RL007" not in rule_ids(findings)

    def test_inline_suppression_with_reason(self):
        findings = run_lint({
            "src/repro/resilience/deadline.py":
                _DOC + "import time\n\n"
                "# repro-lint: disable=RL007 -- deadline math, not a span\n"
                "now = time.monotonic\n",
        })
        assert "RL007" not in rule_ids(findings)

    def test_advisory_severity_never_errors(self):
        found = _rl007(run_lint({
            "src/repro/cuts/solver.py":
                _DOC + "import time\n\nT0 = time.monotonic()\n",
        }))
        assert all(f.severity is not Severity.ERROR for f in found)
