"""RL011 determinism taint: nondeterminism must not reach replayable payloads."""

from __future__ import annotations

from pathlib import Path

from .conftest import run_lint, rule_ids


def _lint(sources, **overrides):
    overrides.setdefault("select", frozenset({"RL011"}))
    return run_lint(sources, **overrides)


class TestSameModule:
    def test_wall_clock_into_cache_put_is_flagged(self):
        findings = _lint({
            "src/repro/cuts/stamp.py":
                "import time\n"
                "def record(cache, cert):\n"
                "    stamp = time.time()\n"
                '    cache.put_certificate("k", (cert, stamp))\n',
        })
        assert rule_ids(findings) == {"RL011"}
        (f,) = findings
        assert "time.time()" in f.message
        assert "put_certificate" in f.message

    def test_unseeded_rng_into_serializer_is_flagged(self):
        findings = _lint({
            "src/repro/verify/gen.py":
                "from numpy.random import default_rng\n"
                "from .serialize import network_spec\n"
                "def make():\n"
                "    rng = default_rng()\n"
                "    return network_spec(rng.integers(0, 9))\n",
            "src/repro/verify/serialize.py":
                "def network_spec(net):\n"
                "    return {}\n",
        })
        assert rule_ids(findings) == {"RL011"}

    def test_seeded_rng_is_clean(self):
        findings = _lint({
            "src/repro/verify/gen.py":
                "from numpy.random import default_rng\n"
                "from .serialize import network_spec\n"
                "def make(seed):\n"
                "    rng = default_rng(seed)\n"
                "    return network_spec(rng.integers(0, 9))\n",
            "src/repro/verify/serialize.py":
                "def network_spec(net):\n"
                "    return {}\n",
        })
        assert findings == []


class TestCrossModule:
    #: The violation is invisible to any single-module pass: module ``a``
    #: only creates an rng, module ``b`` only calls a sink on an argument.
    SOURCES = {
        "src/repro/cuts/a.py":
            "from numpy.random import default_rng\n"
            "def fresh_rng():\n"
            "    return default_rng()\n",
        "src/repro/cuts/b.py":
            "from .a import fresh_rng\n"
            "def publish(cache):\n"
            "    rng = fresh_rng()\n"
            '    cache.put_warm_start("k", rng.integers(0, 9))\n',
    }

    def test_taint_crosses_the_module_boundary(self):
        findings = _lint(self.SOURCES)
        assert rule_ids(findings) == {"RL011"}
        (f,) = findings
        assert f.path == "src/repro/cuts/b.py"
        assert "default_rng()" in f.message
        assert "a.py" in f.message  # origin location named across files

    def test_seeding_the_factory_clears_it(self):
        sources = dict(self.SOURCES)
        sources["src/repro/cuts/a.py"] = (
            "from numpy.random import default_rng\n"
            "def fresh_rng():\n"
            "    return default_rng(1234)\n"
        )
        assert _lint(sources) == []


class TestSetOrder:
    def test_set_iteration_into_sink_is_flagged(self):
        findings = _lint({
            "src/repro/cuts/orders.py":
                "def publish(cache, net):\n"
                "    nodes = list({u for u, _ in net.edges})\n"
                '    cache.put_certificate("k", nodes)\n',
        })
        assert rule_ids(findings) == {"RL011"}
        assert "set-iteration order" in findings[0].message

    def test_sorted_cleanses_set_order(self):
        findings = _lint({
            "src/repro/cuts/orders.py":
                "def publish(cache, net):\n"
                "    nodes = sorted({u for u, _ in net.edges})\n"
                '    cache.put_certificate("k", nodes)\n',
        })
        assert findings == []


class TestSuppression:
    def test_suppression_silences(self):
        findings = _lint({
            "src/repro/cuts/stamp.py":
                "import time\n"
                "def record(cache, cert):\n"
                "    stamp = time.time()\n"
                "    # repro-lint: disable=RL011\n"
                '    cache.put_profile("k", stamp)\n',
        })
        assert findings == []


class TestMutation:
    """Seeded mutation test against the real repo sources.

    Replacing the seeded ``default_rng((seed, i))`` in ``verify/fuzz.py``
    with a bare ``default_rng()`` must light up RL011 through the real
    generate→shrink→serialize pipeline; the unmutated tree must be clean.
    """

    REPO = Path(__file__).resolve().parents[2]

    def _repo_sources(self, mutate: bool) -> dict[str, str]:
        sources = {}
        for path in sorted((self.REPO / "src" / "repro").rglob("*.py")):
            rel = path.relative_to(self.REPO).as_posix()
            sources[rel] = path.read_text(encoding="utf-8")
        fuzz = "src/repro/verify/fuzz.py"
        assert "default_rng((seed, i))" in sources[fuzz]
        if mutate:
            sources[fuzz] = sources[fuzz].replace(
                "default_rng((seed, i))", "default_rng()"
            )
        return sources

    def test_unmutated_repo_is_clean(self):
        assert _lint(self._repo_sources(mutate=False)) == []

    def test_unseeding_fuzz_rng_is_caught(self):
        findings = _lint(self._repo_sources(mutate=True))
        assert rule_ids(findings) == {"RL011"}
        assert all(f.path == "src/repro/verify/fuzz.py" for f in findings)
        # The flow reaches sinks in fuzz.py itself and crosses into the
        # fallback cascade's cache writes.
        messages = " ".join(f.message for f in findings)
        assert "save_case" in messages
        assert "src/repro/core/fallback.py" in messages
