"""RL008: the batched-kernel complexity budget on hot-path modules."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL008"})}

EXP_LOOP = '''
"""Doc."""

def sweep(net, k):
    """Doc."""
    total = 0
    for mask in range(1 << k):
        total += mask
    return total
'''

POW_COMPREHENSION = '''
"""Doc."""

def states(k):
    """Doc."""
    return [m for m in range(2 ** k)]
'''


class TestExponentialLoops:
    def test_variable_exponent_shift_flagged(self):
        findings = run_lint({"src/repro/cuts/m.py": EXP_LOOP}, **_SELECT)
        assert rule_ids(findings) == {"RL008"}

    def test_power_comprehension_flagged(self):
        findings = run_lint({"src/repro/cuts/m.py": POW_COMPREHENSION}, **_SELECT)
        assert rule_ids(findings) == {"RL008"}

    def test_large_constant_exponent_flagged(self):
        src = EXP_LOOP.replace("range(1 << k)", "range(1 << 20)")
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL008"}

    def test_trivial_constant_exponent_allowed(self):
        src = EXP_LOOP.replace("range(1 << k)", "range(1 << 8)")
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_plain_range_allowed(self):
        src = EXP_LOOP.replace("range(1 << k)", "range(k)")
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_cold_module_unrestricted(self):
        assert run_lint({"src/repro/analysis/m.py": EXP_LOOP}, **_SELECT) == []


class TestBatchBitsCeiling:
    def test_oversized_assignment_flagged(self):
        src = '"""Doc."""\n_BATCH_BITS = 26\n'
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL008"}

    def test_oversized_default_flagged(self):
        src = '"""Doc."""\ndef f(batch_bits=26):\n    """Doc."""\n'
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL008"}

    def test_reasonable_value_allowed(self):
        src = '"""Doc."""\n_BATCH_BITS = 20\n'
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_unrelated_name_allowed(self):
        src = '"""Doc."""\n_RETRIES = 26\n'
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []


class TestSuppression:
    def test_justified_suppression_accepted(self):
        src = EXP_LOOP.replace(
            "for mask in range(1 << k):",
            "# repro-lint: disable=RL008 -- pin loop is the contract's unit\n"
            "    for mask in range(1 << k):",
        )
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_bare_suppression_rejected(self):
        src = EXP_LOOP.replace(
            "for mask in range(1 << k):",
            "for mask in range(1 << k):  # repro-lint: disable=RL008",
        )
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert len(findings) == 1
        assert "justification" in findings[0].message
