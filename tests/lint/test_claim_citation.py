"""RL001: claim citations resolve, modules cite, registry covers DESIGN.md."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL001"})}

CITED = '''
"""Implements the mesh-of-stars bound (Lemma 2.17)."""

def lower_bound(n):
    """Evaluate the bound."""
    return n
'''

UNCITED = '''
"""A module that talks about nothing in particular."""

def helper(n):
    """Just a helper."""
    return n
'''

STALE = '''
"""Implements Lemma 9.9, which the paper does not contain."""
'''

NO_DOCSTRING = '''
"""Implements the mesh-of-stars bound (Lemma 2.17)."""

def exposed(n):
    return n
'''


class TestModuleCitation:
    def test_cited_module_is_clean(self):
        assert run_lint({"src/repro/cuts/m.py": CITED}, **_SELECT) == []

    def test_uncited_module_flagged(self):
        findings = run_lint({"src/repro/cuts/m.py": UNCITED}, **_SELECT)
        assert rule_ids(findings) == {"RL001"}
        assert any("cites no paper claim" in f.message for f in findings)

    def test_outside_claim_packages_unrestricted(self):
        assert run_lint({"src/repro/routing/m.py": UNCITED}, **_SELECT) == []

    def test_stale_reference_flagged(self):
        findings = run_lint({"src/repro/expansion/m.py": STALE}, **_SELECT)
        assert any("Lemma 9.9" in f.message for f in findings)

    def test_public_def_needs_docstring(self):
        findings = run_lint({"src/repro/core/m.py": NO_DOCSTRING}, **_SELECT)
        assert any("no docstring" in f.message for f in findings)

    def test_init_reexport_shim_exempt(self):
        shim = '"""Re-exports."""\nfrom .m import lower_bound\n'
        assert run_lint({"src/repro/cuts/__init__.py": shim}, **_SELECT) == []

    def test_suppression(self):
        src = UNCITED.replace(
            '"""A module that talks about nothing in particular."""',
            '"""A module that talks about nothing in particular."""'
            "\n# repro-lint: disable=RL001\npass",
        )
        # Suppressing the module-level finding needs the comment on line 1's
        # finding line; easier and more honest: a citing module is clean.
        findings = run_lint({"src/repro/cuts/m.py": src}, **_SELECT)
        assert all(f.line != 2 for f in findings)


class TestRegistryGap:
    def test_unregistered_and_unknown_ids_flagged(self):
        fake_theorems = '''
"""Claim checkers (Theorem 2.20 and friends)."""

def _register(claim_id):
    """Decorator stub."""

@_register("not-a-claim")
def check_nothing():
    """Bogus checker."""
'''
        findings = run_lint(
            {"src/repro/core/theorems.py": fake_theorems}, **_SELECT
        )
        msgs = [f.message for f in findings]
        assert any("'not-a-claim' which is not a row" in m for m in msgs)
        assert any(
            "'theorem-2.20' is in CLAIM_TABLE but has no registered" in m
            for m in msgs
        )
        assert any("registry gap" in m for m in msgs)
