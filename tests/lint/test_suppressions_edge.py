"""Suppression and file-collection edge cases: CRLF, multi-line statements,
undecodable files, overlapping roots, parallel parity."""

from __future__ import annotations

from repro.lint import LintConfig, lint_sources
from repro.lint.runner import collect_files, lint_paths

from .conftest import run_lint, rule_ids

#: A one-expression RL004 trigger (`== 0.5` float equality).
BAD_COMPARE = (
    "def f(x):\n"
    "    return x == 0.5\n"
)


def _rl004(sources, **overrides):
    overrides.setdefault("select", frozenset({"RL004"}))
    return run_lint(sources, **overrides)


class TestCrlf:
    def test_findings_fire_on_crlf_sources(self):
        findings = _rl004({
            "src/repro/cuts/x.py": BAD_COMPARE.replace("\n", "\r\n"),
        })
        assert rule_ids(findings) == {"RL004"}
        assert findings[0].line == 2

    def test_same_line_suppression_survives_crlf(self):
        src = (
            "def f(x):\n"
            "    return x == 0.5  # repro-lint: disable=RL004\n"
        )
        assert _rl004({"src/repro/cuts/x.py": src.replace("\n", "\r\n")}) == []

    def test_previous_line_suppression_survives_crlf(self):
        src = (
            "def f(x):\n"
            "    # repro-lint: disable=RL004\n"
            "    return x == 0.5\n"
        )
        assert _rl004({"src/repro/cuts/x.py": src.replace("\n", "\r\n")}) == []


class TestMultiLineStatements:
    #: The comparison sits on a continuation line; the comment can only
    #: precede the *logical* line, so the runner must map the finding
    #: back to its enclosing statement start.
    SUPPRESSED = (
        "def f(x):\n"
        "    # repro-lint: disable=RL004\n"
        "    return (\n"
        "        x\n"
        "        == 0.5\n"
        "    )\n"
    )

    def test_finding_lands_on_continuation_line(self):
        src = self.SUPPRESSED.replace("    # repro-lint: disable=RL004\n", "")
        findings = _rl004({"src/repro/cuts/x.py": src})
        assert rule_ids(findings) == {"RL004"}
        assert findings[0].line > 2  # inside the parenthesised expression

    def test_suppression_at_logical_line_start_applies(self):
        assert _rl004({"src/repro/cuts/x.py": self.SUPPRESSED}) == []

    def test_unrelated_rule_on_previous_line_does_not_leak(self):
        src = self.SUPPRESSED.replace("disable=RL004", "disable=RL005")
        findings = _rl004({"src/repro/cuts/x.py": src})
        assert rule_ids(findings) == {"RL004"}


class TestUnreadableFiles:
    def test_undecodable_file_is_rl000(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "junk.py").write_bytes(b"def f():\n    return '\xff\xfe'\n")
        findings = lint_paths([tmp_path / "src"], LintConfig())
        assert rule_ids(findings) == {"RL000"}
        assert findings[0].line == 1

    def test_missing_file_is_rl000(self, tmp_path):
        ghost = tmp_path / "ghost.py"
        findings = lint_paths([ghost], LintConfig())
        assert rule_ids(findings) == {"RL000"}


class TestOverlappingRoots:
    def test_collect_files_dedupes_resolved_paths(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(BAD_COMPARE)
        files = collect_files([tmp_path / "src", tmp_path / "src" / "repro"])
        assert len(files) == 1

    def test_overlapping_roots_do_not_double_findings(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "cuts"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(BAD_COMPARE)
        config = LintConfig(select=frozenset({"RL004"}))
        once = lint_paths([tmp_path / "src"], config)
        twice = lint_paths([tmp_path / "src", tmp_path / "src" / "repro"], config)
        assert len(once) == len(twice) == 1


class TestParallelParity:
    def test_jobs_output_is_bit_identical(self):
        sources = {
            f"src/repro/cuts/m{i}.py": BAD_COMPARE for i in range(6)
        }
        config = LintConfig(select=frozenset({"RL004"}))
        serial = lint_sources(sources, config)
        parallel = lint_sources(sources, config, jobs=2)
        assert serial == parallel
        assert len(serial) == 6
