"""RL010 budget-threading: interprocedural loop/poll reachability."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

#: Entry point override used throughout: the fixture's own cascade.
ENTRY = ("repro.core.fallback.solve_with_fallback",)

CORE_ENTRY = {
    "src/repro/core/fallback.py":
        "from ..cuts.solver import grind\n"
        "def solve_with_fallback(net, budget):\n"
        "    return grind(net, budget)\n",
}


def _lint(sources, **overrides):
    overrides.setdefault("select", frozenset({"RL010"}))
    overrides.setdefault("budget_entry_points", ENTRY)
    return run_lint(sources, **overrides)


class TestTrigger:
    def test_cross_module_unpolled_loop_is_flagged(self):
        # The loop, the entry point and the (absent) poll are in different
        # files: only the call graph can see this.
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "def grind(net, budget):\n"
                "    while net:\n"
                "        net = shrink(net)\n"
                "    return net\n"
                "def shrink(net):\n"
                "    return None\n",
        })
        assert rule_ids(findings) == {"RL010"}
        (f,) = findings
        assert f.path == "src/repro/cuts/solver.py"
        assert f.line == 2
        assert "solve_with_fallback" in f.message

    def test_for_loop_with_repro_calls_is_flagged(self):
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "def grind(net, budget):\n"
                "    for _ in range(8):\n"
                "        net = shrink(net)\n"
                "    return net\n"
                "def shrink(net):\n"
                "    return None\n",
        })
        assert rule_ids(findings) == {"RL010"}

    def test_routing_package_is_also_hot(self):
        findings = _lint({
            "src/repro/core/fallback.py":
                "from ..routing.paths import route\n"
                "def solve_with_fallback(net, budget):\n"
                "    return route(net)\n",
            "src/repro/routing/paths.py":
                "def route(net):\n"
                "    while net:\n"
                "        net = hop(net)\n"
                "    return net\n"
                "def hop(net):\n"
                "    return None\n",
        })
        assert rule_ids(findings) == {"RL010"}


class TestClean:
    def test_direct_poll_in_loop_passes(self):
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "def grind(net, budget):\n"
                "    while net:\n"
                "        if budget.expired():\n"
                "            break\n"
                "        net = shrink(net)\n"
                "    return net\n"
                "def shrink(net):\n"
                "    return None\n",
        })
        assert findings == []

    def test_poll_via_callee_passes(self):
        # The loop itself never polls, but its callee (in another module)
        # does — threading the budget through a helper is the good shape.
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "from .inner import shrink\n"
                "def grind(net, budget):\n"
                "    while net:\n"
                "        net = shrink(net, budget)\n"
                "    return net\n",
            "src/repro/cuts/inner.py":
                "def shrink(net, budget):\n"
                "    if budget.expired():\n"
                "        return None\n"
                "    return net\n",
        })
        assert findings == []

    def test_unreachable_hot_loop_is_not_flagged(self):
        # No call path from the entry points: the wall-clock contract
        # doesn't apply (yet) — RL010 is about the solve path.
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "def grind(net, budget):\n"
                "    return net\n"
                "def orphan(net):\n"
                "    while net:\n"
                "        net = grind(net, None)\n"
                "    return net\n",
        })
        assert findings == []

    def test_numpy_only_for_loop_is_not_flagged(self):
        # A straight accumulation loop with no repro calls terminates
        # with its iterable; vectorization is RL003's business.
        findings = _lint({
            **CORE_ENTRY,
            "src/repro/cuts/solver.py":
                "def grind(net, budget):\n"
                "    total = 0\n"
                "    for e in net.edges:\n"
                "        total += e\n"
                "    return total\n",
        })
        assert findings == []

    def test_non_hot_package_is_not_flagged(self):
        findings = _lint({
            "src/repro/core/fallback.py":
                "from .driver import spin\n"
                "def solve_with_fallback(net, budget):\n"
                "    return spin(net)\n",
            "src/repro/core/driver.py":
                "def spin(net):\n"
                "    while net:\n"
                "        net = spin(net)\n"
                "    return net\n",
        })
        assert findings == []


class TestSuppression:
    BAD = {
        **CORE_ENTRY,
        "src/repro/cuts/solver.py":
            "def grind(net, budget):\n"
            "    # repro-lint: disable=RL010 -- bounded setup sweep\n"
            "    while net:\n"
            "        net = shrink(net)\n"
            "    return net\n"
            "def shrink(net):\n"
            "    return None\n",
    }

    def test_justified_suppression_silences(self):
        assert _lint(self.BAD) == []

    def test_bare_suppression_is_rejected(self):
        sources = {
            k: v.replace(" -- bounded setup sweep", "")
            for k, v in self.BAD.items()
        }
        findings = _lint(sources)
        assert rule_ids(findings) == {"RL010"}
        assert "justification" in findings[0].message
