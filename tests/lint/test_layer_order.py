"""RL002: the import layer DAG, its exceptions, and stdlib-only packages."""

from __future__ import annotations

from .conftest import run_lint, rule_ids

_SELECT = {"select": frozenset({"RL002"})}


class TestDag:
    def test_upward_import_allowed(self):
        src = '"""Doc."""\nfrom repro.topology.base import Network\n'
        assert run_lint({"src/repro/cuts/m.py": src}, **_SELECT) == []

    def test_downward_import_flagged(self):
        src = '"""Doc."""\nimport repro.cuts\n'
        findings = run_lint({"src/repro/topology/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL002"}
        assert "layer violation" in findings[0].message

    def test_relative_import_resolved(self):
        src = '"""Doc."""\nfrom ..cuts import cut\n'
        findings = run_lint({"src/repro/topology/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL002"}

    def test_function_level_import_checked(self):
        src = '"""Doc."""\ndef f():\n    from repro.cli import main\n'
        findings = run_lint({"src/repro/topology/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL002"}

    def test_undeclared_package_flagged(self):
        src = '"""Doc."""\nimport repro.topology\n'
        findings = run_lint({"src/repro/newpkg/m.py": src}, **_SELECT)
        assert any("not declared in the layer DAG" in f.message for f in findings)


class TestExceptions:
    def test_module_granular_exception_allowed(self):
        src = '"""Doc."""\nfrom repro.routing.paths import dimension_paths\n'
        assert run_lint({"src/repro/embeddings/m.py": src}, **_SELECT) == []

    def test_exception_does_not_widen_to_package(self):
        src = '"""Doc."""\nfrom repro.routing.flows import extract_paths\n'
        findings = run_lint({"src/repro/embeddings/m.py": src}, **_SELECT)
        assert rule_ids(findings) == {"RL002"}


class TestStdlibOnly:
    def test_lint_package_may_use_stdlib(self):
        src = '"""Doc."""\nimport ast\nimport tokenize\n'
        assert run_lint({"src/repro/lint/m.py": src}, **_SELECT) == []

    def test_lint_package_may_not_use_third_party(self):
        src = '"""Doc."""\nimport numpy as np\n'
        findings = run_lint({"src/repro/lint/m.py": src}, **_SELECT)
        assert any("stdlib-only" in f.message for f in findings)
