"""The whole-program analysis substrate: symbols, graph, cache, export."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.analysis.cache import SummaryCache
from repro.lint.analysis.dataflow import solve_fixpoint
from repro.lint.analysis.project import (
    GRAPH_FORMAT,
    build_project_analysis,
    validate_graph,
)
from repro.lint.analysis.summaries import (
    extract_module_summary,
    summarize_modules,
)
from repro.lint.model import ModuleInfo


def _modules(sources: dict[str, str]) -> list[ModuleInfo]:
    return [
        ModuleInfo.from_source(Path(p), src) for p, src in sources.items()
    ]


class TestSymbols:
    def test_absolute_and_aliased_imports(self):
        (m,) = _modules({
            "src/repro/cuts/x.py":
                "import numpy as np\n"
                "import repro.cuts.layered_dp as ldp\n"
                "from repro.topology.butterfly import butterfly\n",
        })
        assert m.symbols["np"] == "numpy"
        assert m.symbols["ldp"] == "repro.cuts.layered_dp"
        assert m.symbols["butterfly"] == "repro.topology.butterfly.butterfly"

    def test_relative_imports_resolve_against_package(self):
        (m,) = _modules({
            "src/repro/cuts/x.py":
                "from .cut import Cut\n"
                "from ..topology.base import Network\n",
        })
        assert m.symbols["Cut"] == "repro.cuts.cut.Cut"
        assert m.symbols["Network"] == "repro.topology.base.Network"

    def test_relative_import_in_package_init(self):
        (m,) = _modules({
            "src/repro/cuts/__init__.py": "from .cut import Cut\n",
        })
        assert m.symbols["Cut"] == "repro.cuts.cut.Cut"

    def test_outside_repro_tree_skips_relative(self):
        (m,) = _modules({"scripts/tool.py": "from . import x\nimport json\n"})
        assert m.symbols == {"json": "json"}


class TestCallGraph:
    SOURCES = {
        "src/repro/cuts/__init__.py": "from .helper import grind\n",
        "src/repro/cuts/helper.py":
            "def grind(net):\n"
            "    return net\n",
        "src/repro/core/driver.py":
            "from ..cuts import grind\n"
            "def run(net):\n"
            "    return grind(net)\n",
    }

    def _analysis(self, extra=None, **overrides):
        sources = dict(self.SOURCES, **(extra or {}))
        config = LintConfig(**overrides) if overrides else LintConfig()
        return build_project_analysis(_modules(sources), config)

    def test_reexport_through_package_init_resolves(self):
        ana = self._analysis()
        assert ana.resolve_function("repro.cuts.grind") == \
            "repro.cuts.helper.grind"
        assert ("repro.cuts.helper.grind"
                in ana.call_edges["repro.core.driver.run"])

    def test_callers_are_inverse_of_edges(self):
        ana = self._analysis()
        assert "repro.core.driver.run" in ana.callers["repro.cuts.helper.grind"]

    def test_reference_edges_reach_dispatch_targets(self):
        ana = self._analysis(extra={
            "src/repro/core/table.py":
                "from ..cuts.helper import grind\n"
                "def pick(name, net):\n"
                "    fn = {'g': grind}[name]\n"
                "    return fn(net)\n",
        })
        assert ("repro.cuts.helper.grind"
                in ana.ref_edges["repro.core.table.pick"])

    def test_entry_reachability(self):
        ana = self._analysis(
            budget_entry_points=("repro.core.driver.run",),
        )
        assert "repro.cuts.helper.grind" in ana.reachable_from
        assert ana.reachable_from["repro.cuts.helper.grind"] == \
            "repro.core.driver.run"

    def test_method_resolution_via_self(self):
        ana = self._analysis(extra={
            "src/repro/cuts/klass.py":
                "class Box:\n"
                "    def a(self):\n"
                "        return self.b()\n"
                "    def b(self):\n"
                "        return 1\n",
        })
        assert ("repro.cuts.klass.Box.b"
                in ana.call_edges["repro.cuts.klass.Box.a"])


class TestFixpointEngine:
    def test_transitive_reachability_as_fixpoint(self):
        edges = {"a": {"b"}, "b": {"c"}, "c": set(), "d": set()}
        callers: dict[str, set] = {n: set() for n in edges}
        for src, dsts in edges.items():
            for dst in dsts:
                callers[dst].add(src)
        facts = solve_fixpoint(
            sorted(edges),
            initial=lambda n: n == "c",
            transfer=lambda n, f: n == "c" or any(f[g] for g in edges[n]),
            dependents=lambda n: callers[n],
        )
        assert facts == {"a": True, "b": True, "c": True, "d": False}

    def test_result_is_deterministic(self):
        nodes = [f"n{i}" for i in range(50)]
        edges = {n: {nodes[(i * 7 + 3) % 50]} for i, n in enumerate(nodes)}
        callers: dict[str, set] = {n: set() for n in nodes}
        for src, dsts in edges.items():
            for dst in dsts:
                callers[dst].add(src)

        def run():
            return solve_fixpoint(
                nodes,
                initial=lambda n: frozenset({n}),
                transfer=lambda n, f: frozenset({n}).union(
                    *(f[g] for g in edges[n])
                ),
                dependents=lambda n: sorted(callers[n]),
            )

        assert run() == run()


class TestSummaryCache:
    SOURCES = {
        "src/repro/cuts/a.py": "def f():\n    return 1\n",
        "src/repro/cuts/b.py": "def g():\n    return 2\n",
    }

    def test_warm_run_reextracts_nothing(self, tmp_path):
        config = LintConfig()
        mods = _modules(self.SOURCES)
        cold = SummaryCache(tmp_path)
        summarize_modules(mods, config, cache=cold)
        assert cold.stats() == {"hits": 0, "misses": 2}
        warm = SummaryCache(tmp_path)
        summarize_modules(mods, config, cache=warm)
        assert warm.stats() == {"hits": 2, "misses": 0}

    def test_only_changed_digest_is_reanalyzed(self, tmp_path):
        config = LintConfig()
        summarize_modules(_modules(self.SOURCES), config,
                          cache=SummaryCache(tmp_path))
        touched = dict(self.SOURCES)
        touched["src/repro/cuts/b.py"] = "def g():\n    return 3\n"
        warm = SummaryCache(tmp_path)
        summarize_modules(_modules(touched), config, cache=warm)
        assert warm.stats() == {"hits": 1, "misses": 1}

    def test_config_change_invalidates(self, tmp_path):
        mods = _modules(self.SOURCES)
        summarize_modules(mods, LintConfig(), cache=SummaryCache(tmp_path))
        warm = SummaryCache(tmp_path)
        summarize_modules(
            mods, LintConfig(budget_poll_methods=("expired",)), cache=warm
        )
        assert warm.stats()["hits"] == 0

    def test_cached_summary_round_trips(self, tmp_path):
        config = LintConfig()
        (mod,) = _modules({
            "src/repro/cuts/c.py":
                "from .cut import Cut\n"
                "def f(net, budget):\n"
                "    for _ in range(3):\n"
                "        if budget.expired():\n"
                "            break\n"
                "        net = Cut(net, None)\n"
                "    return net\n",
        })
        direct = extract_module_summary(mod, config)
        cache = SummaryCache(tmp_path)
        cache.store(mod.source, config, direct)
        loaded = cache.load(mod.source, config)
        assert loaded is not None
        assert loaded.to_dict() == direct.to_dict()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        config = LintConfig()
        (mod,) = _modules({"src/repro/cuts/a.py": self.SOURCES["src/repro/cuts/a.py"]})
        cache = SummaryCache(tmp_path)
        key = cache.key(mod.source, config)
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.json").write_text("{not json")
        assert cache.load(mod.source, config) is None
        assert cache.stats()["misses"] == 1


class TestGraphExport:
    def test_repo_graph_is_schema_valid(self):
        sources = {
            "src/repro/core/driver.py":
                "from ..cuts.helper import grind\n"
                "def run(net):\n"
                "    return grind(net)\n",
            "src/repro/cuts/helper.py":
                "def grind(net):\n"
                "    while net:\n"
                "        net = step(net)\n"
                "    return net\n"
                "def step(net):\n"
                "    return None\n",
        }
        ana = build_project_analysis(
            _modules(sources),
            LintConfig(budget_entry_points=("repro.core.driver.run",)),
        )
        doc = ana.to_graph_dict()
        assert validate_graph(doc) == []
        assert doc["format"] == GRAPH_FORMAT
        assert json.loads(json.dumps(doc)) == doc  # JSON round-trip
        ids = {f["id"] for f in doc["functions"]}
        assert "repro.cuts.helper.grind" in ids

    def test_validator_catches_broken_edges(self):
        doc = {
            "format": GRAPH_FORMAT,
            "entry_points": [],
            "modules": [],
            "functions": [
                {"id": "repro.a.f", "module": "repro.a", "lineno": 1,
                 "polls": False, "reachable": False, "loops": 0},
            ],
            "calls": [{"from": "repro.a.f", "to": "repro.gone", "kind": "call"}],
            "taint": {"returns": [], "sink_params": [], "violations": []},
            "stats": {"modules": 0, "functions": 1, "call_edges": 1,
                      "reachable": 0},
        }
        problems = validate_graph(doc)
        assert any("repro.gone" in p for p in problems)

    def test_validator_rejects_wrong_format(self):
        assert validate_graph({"format": "nope"})


@pytest.mark.slow
def test_real_repo_graph_validates(tmp_path):
    """`repro-lint graph src/repro` end-to-end on the actual tree."""
    from repro.lint.cli import main as lint_main

    repo = Path(__file__).resolve().parents[2]
    out = tmp_path / "graph.json"
    rc = lint_main(
        ["graph", str(repo / "src" / "repro"), "--output", str(out)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert validate_graph(doc) == []
    assert doc["stats"]["functions"] > 100
    assert doc["stats"]["reachable"] > 10
    assert doc["taint"]["violations"] == []
