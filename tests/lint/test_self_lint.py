"""The repo must be clean under its own linter (the merge invariant)."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean():
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert findings == [], "\n".join(f.render() for f in findings)
