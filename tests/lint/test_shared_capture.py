"""RL012 shared-capture: pool tasks must not close over mutated state."""

from __future__ import annotations

from .conftest import run_lint, rule_ids


def _lint(sources, **overrides):
    overrides.setdefault("select", frozenset({"RL012"}))
    return run_lint(sources, **overrides)


class TestTrigger:
    def test_nested_def_closing_over_mutated_list(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items):\n"
                "    acc = []\n"
                "    def task(x):\n"
                "        return acc, x\n"
                "    supervised_map(task, items, workers=2)\n"
                "    acc.extend(items)\n"
                "    return acc\n",
        })
        assert rule_ids(findings) == {"RL012"}
        (f,) = findings
        assert "'task'" in f.message
        assert "acc" in f.message

    def test_lambda_closing_over_augassigned_counter(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items):\n"
                "    hits = 0\n"
                "    supervised_map(lambda x: x + hits, items, workers=2)\n"
                "    hits += 1\n"
                "    return hits\n",
        })
        assert rule_ids(findings) == {"RL012"}

    def test_keyword_task_argument_is_checked(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items):\n"
                "    seen = set()\n"
                "    def task(x):\n"
                "        return x in seen\n"
                "    supervised_map(task_fn=task, items=items)\n"
                "    seen.add(1)\n"
                "    return seen\n",
        })
        assert rule_ids(findings) == {"RL012"}


class TestClean:
    def test_module_level_task_is_clean(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def task(x):\n"
                "    return x * 2\n"
                "def sweep(items):\n"
                "    return supervised_map(task, items, workers=2)\n",
        })
        assert findings == []

    def test_unmutated_closure_is_clean(self):
        # Read-only capture pickles fine — the copy never diverges.
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items, scale):\n"
                "    def task(x):\n"
                "        return x * scale\n"
                "    return supervised_map(task, items, workers=2)\n",
        })
        assert findings == []

    def test_mutation_inside_task_body_only_is_clean(self):
        # The task mutating its *own* locals-by-closure is the worker's
        # private copy; RL012 is about the parent mutating in parallel.
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items):\n"
                "    scratch = []\n"
                "    def task(x):\n"
                "        scratch.append(x)\n"
                "        return len(scratch)\n"
                "    return supervised_map(task, items, workers=2)\n",
        })
        assert findings == []

    def test_other_callables_are_not_pool_submits(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "def sweep(items):\n"
                "    acc = []\n"
                "    def task(x):\n"
                "        return acc, x\n"
                "    out = list(map(task, items))\n"
                "    acc.extend(out)\n"
                "    return acc\n",
        })
        assert findings == []


class TestSuppression:
    def test_suppression_silences(self):
        findings = _lint({
            "src/repro/cuts/fan.py":
                "from ..resilience.supervise import supervised_map\n"
                "def sweep(items):\n"
                "    acc = []\n"
                "    def task(x):\n"
                "        return acc, x\n"
                "    # repro-lint: disable=RL012\n"
                "    supervised_map(task, items, workers=2)\n"
                "    acc.extend(items)\n"
                "    return acc\n",
        })
        assert findings == []
