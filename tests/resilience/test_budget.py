"""Budget and cancellation-token semantics, driven by a fake clock."""

import pytest

from repro.resilience import Budget, CancellationToken


class FakeClock:
    """Each call returns the current time, then advances one step."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.t
        self.t += self.step
        return t


class TestDeadline:
    def test_expires_after_enough_polls(self):
        # Construction reads the clock once (t=0, deadline 2.2); polls read
        # t=1, 2, 3 — the third poll is the first at or past the deadline.
        budget = Budget(2.2, clock=FakeClock())
        assert not budget.expired()
        assert not budget.expired()
        assert budget.expired()

    def test_zero_budget_expires_immediately(self):
        budget = Budget(0, clock=FakeClock())
        assert budget.expired()

    def test_unlimited_never_expires(self):
        budget = Budget.unlimited()
        assert not budget.expired()
        assert budget.remaining() is None

    def test_remaining_counts_down_and_floors_at_zero(self):
        budget = Budget(2.5, clock=FakeClock())
        assert budget.remaining() == pytest.approx(1.5)
        assert budget.remaining() == pytest.approx(0.5)
        assert budget.remaining() == pytest.approx(0.0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Budget(-1)


class TestToken:
    def test_cancel_expires_regardless_of_clock(self):
        token = CancellationToken()
        budget = Budget(None, token=token)
        assert not budget.expired()
        token.cancel()
        assert budget.expired()

    def test_cancel_is_idempotent(self):
        token = CancellationToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestBatchBits:
    def test_default_passthrough(self):
        assert Budget.unlimited().batch_bits(20) == 20

    def test_ceiling_applies(self):
        assert Budget(None, max_batch_bits=8).batch_bits(20) == 8

    def test_ceiling_never_raises_the_default(self):
        assert Budget(None, max_batch_bits=30).batch_bits(20) == 20

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(ValueError, match="max_batch_bits"):
            Budget(None, max_batch_bits=0)
