"""Checkpoint store atomicity/fingerprinting and range-ledger bookkeeping."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience import CheckpointStore, RangeLedger


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("run-1", {"completed": [[0, 4]], "best": [1, 2]})
        assert store.load("run-1") == {"completed": [[0, 4]], "best": [1, 2]}

    def test_key_mismatch_reads_as_no_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("run-1", {"x": 1})
        assert store.load("run-2") is None

    def test_missing_file_reads_as_no_checkpoint(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.json").load("k") is None

    def test_corrupt_file_reads_as_no_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{ torn mid-wri")
        assert CheckpointStore(path).load("k") is None

    def test_wrong_version_reads_as_no_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "key": "k", "payload": {}}))
        assert CheckpointStore(path).load("k") is None

    def test_save_leaves_no_temp_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("k", {"a": 1})
        store.save("k", {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]
        assert store.load("k") == {"a": 2}

    def test_delete_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("k", {})
        store.delete()
        store.delete()
        assert store.load("k") is None


class TestRangeLedger:
    def test_adjacent_ranges_coalesce(self):
        ledger = RangeLedger()
        ledger.add(0, 4)
        ledger.add(4, 8)
        assert ledger.to_list() == [[0, 8]]
        assert ledger.total == 8

    def test_overlap_and_out_of_order_merge(self):
        ledger = RangeLedger()
        ledger.add(8, 12)
        ledger.add(0, 5)
        ledger.add(3, 9)
        assert ledger.to_list() == [[0, 12]]

    def test_disjoint_ranges_stay_separate(self):
        ledger = RangeLedger()
        ledger.add(0, 2)
        ledger.add(6, 8)
        assert ledger.to_list() == [[0, 2], [6, 8]]
        assert ledger.total == 4

    def test_covers_requires_a_single_containing_range(self):
        ledger = RangeLedger([(0, 4), (6, 10)])
        assert ledger.covers(0, 4)
        assert ledger.covers(7, 9)
        assert not ledger.covers(3, 7)  # spans the gap
        assert not ledger.covers(4, 6)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            RangeLedger().add(5, 5)

    def test_from_list_tolerates_garbage(self):
        assert RangeLedger.from_list(None).total == 0
        assert RangeLedger.from_list("nope").total == 0
        assert RangeLedger.from_list([[0, 3]]).total == 3

    def test_json_roundtrip(self):
        ledger = RangeLedger([(0, 2), (4, 8)])
        again = RangeLedger.from_list(json.loads(json.dumps(ledger.to_list())))
        assert again.to_list() == ledger.to_list()

    def test_numpy_ints_stay_json_serializable(self):
        # Shard bounds arrive as np.int64 from the sweep grids; the
        # ledger must coerce them or json.dumps chokes on the state file.
        ledger = RangeLedger()
        ledger.add(np.int64(0), np.int64(4))
        assert json.dumps(ledger.to_list()) == "[[0, 4]]"
        assert all(
            type(x) is int for pair in ledger.to_list() for x in pair
        )


class TestCoverageAndGaps:
    def test_coverage_counts_only_the_window(self):
        ledger = RangeLedger([(0, 4), (8, 12)])
        assert ledger.coverage(0, 12) == 8
        assert ledger.coverage(2, 10) == 4   # 2 from each range
        assert ledger.coverage(4, 8) == 0    # exactly the gap
        assert ledger.coverage(5, 5) == 0    # empty window
        assert ledger.coverage(12, 0) == 0   # inverted window

    def test_gaps_tile_the_window(self):
        ledger = RangeLedger([(2, 4), (6, 8)])
        assert ledger.gaps(0, 10) == [(0, 2), (4, 6), (8, 10)]
        assert ledger.gaps(2, 8) == [(4, 6)]
        assert ledger.gaps(2, 4) == []
        assert ledger.gaps(0, 2) == [(0, 2)]

    def test_empty_ledger_has_one_gap(self):
        assert RangeLedger().gaps(3, 9) == [(3, 9)]
        assert RangeLedger().coverage(3, 9) == 0


# Adversarial interleavings of the operations the shard merge path
# performs: ranges added in any order, with arbitrary overlap and
# touching boundaries, must always coalesce to the same canonical form.
_ranges = st.lists(
    st.tuples(st.integers(0, 60), st.integers(1, 20)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    min_size=0, max_size=12,
)


class TestRangeLedgerProperties:
    @settings(max_examples=200, deadline=None)
    @given(_ranges, st.randoms(use_true_random=False))
    def test_insertion_order_never_matters(self, ranges, rnd):
        shuffled = list(ranges)
        rnd.shuffle(shuffled)
        a, b = RangeLedger(), RangeLedger()
        for r in ranges:
            a.add(*r)
        for r in shuffled:
            b.add(*r)
        assert a.to_list() == b.to_list()
        assert a.total == b.total

    @settings(max_examples=200, deadline=None)
    @given(_ranges)
    def test_canonical_form_is_sorted_disjoint_nonadjacent(self, ranges):
        ledger = RangeLedger()
        for r in ranges:
            ledger.add(*r)
        out = ledger.to_list()
        for lo, hi in out:
            assert lo < hi
        for (_, h1), (l2, _) in zip(out, out[1:]):
            assert h1 < l2  # touching ranges must have coalesced

    @settings(max_examples=200, deadline=None)
    @given(_ranges)
    def test_membership_matches_reference_set(self, ranges):
        ledger = RangeLedger()
        covered = set()
        for lo, hi in ranges:
            ledger.add(lo, hi)
            covered.update(range(lo, hi))
        assert ledger.total == len(covered)
        window_lo, window_hi = 0, 85
        assert ledger.coverage(window_lo, window_hi) == len(
            covered & set(range(window_lo, window_hi))
        )
        # gaps() tiles exactly the uncovered points of the window.
        gap_points = set()
        for lo, hi in ledger.gaps(window_lo, window_hi):
            assert lo < hi
            gap_points.update(range(lo, hi))
        assert gap_points == set(range(window_lo, window_hi)) - covered

    @settings(max_examples=100, deadline=None)
    @given(_ranges, st.integers(0, 80), st.integers(1, 20))
    def test_covers_iff_no_gaps(self, ranges, lo, width):
        hi = lo + width
        ledger = RangeLedger()
        for r in ranges:
            ledger.add(*r)
        assert ledger.covers(lo, hi) == (ledger.gaps(lo, hi) == [])
        assert ledger.covers(lo, hi) == (ledger.coverage(lo, hi) == width)
