"""Checkpoint store atomicity/fingerprinting and range-ledger bookkeeping."""

import json

import pytest

from repro.resilience import CheckpointStore, RangeLedger


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("run-1", {"completed": [[0, 4]], "best": [1, 2]})
        assert store.load("run-1") == {"completed": [[0, 4]], "best": [1, 2]}

    def test_key_mismatch_reads_as_no_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("run-1", {"x": 1})
        assert store.load("run-2") is None

    def test_missing_file_reads_as_no_checkpoint(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.json").load("k") is None

    def test_corrupt_file_reads_as_no_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{ torn mid-wri")
        assert CheckpointStore(path).load("k") is None

    def test_wrong_version_reads_as_no_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "key": "k", "payload": {}}))
        assert CheckpointStore(path).load("k") is None

    def test_save_leaves_no_temp_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("k", {"a": 1})
        store.save("k", {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]
        assert store.load("k") == {"a": 2}

    def test_delete_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        store.save("k", {})
        store.delete()
        store.delete()
        assert store.load("k") is None


class TestRangeLedger:
    def test_adjacent_ranges_coalesce(self):
        ledger = RangeLedger()
        ledger.add(0, 4)
        ledger.add(4, 8)
        assert ledger.to_list() == [[0, 8]]
        assert ledger.total == 8

    def test_overlap_and_out_of_order_merge(self):
        ledger = RangeLedger()
        ledger.add(8, 12)
        ledger.add(0, 5)
        ledger.add(3, 9)
        assert ledger.to_list() == [[0, 12]]

    def test_disjoint_ranges_stay_separate(self):
        ledger = RangeLedger()
        ledger.add(0, 2)
        ledger.add(6, 8)
        assert ledger.to_list() == [[0, 2], [6, 8]]
        assert ledger.total == 4

    def test_covers_requires_a_single_containing_range(self):
        ledger = RangeLedger([(0, 4), (6, 10)])
        assert ledger.covers(0, 4)
        assert ledger.covers(7, 9)
        assert not ledger.covers(3, 7)  # spans the gap
        assert not ledger.covers(4, 6)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError, match="empty or inverted"):
            RangeLedger().add(5, 5)

    def test_from_list_tolerates_garbage(self):
        assert RangeLedger.from_list(None).total == 0
        assert RangeLedger.from_list("nope").total == 0
        assert RangeLedger.from_list([[0, 3]]).total == 3

    def test_json_roundtrip(self):
        ledger = RangeLedger([(0, 2), (4, 8)])
        again = RangeLedger.from_list(json.loads(json.dumps(ledger.to_list())))
        assert again.to_list() == ledger.to_list()
