"""Fault injection: seeded topology faults and the one-shot crash token."""

import multiprocessing
import signal

import numpy as np
import pytest

from repro.resilience import FaultInjector, arm_crash_token, maybe_crash


class TestDropEdges:
    def test_seeded_sequences_replay_identically(self, w4):
        a = FaultInjector(seed=3)
        b = FaultInjector(seed=3)
        for _ in range(3):
            na, nb = a.drop_edges(w4, rate=0.2), b.drop_edges(w4, rate=0.2)
            assert np.array_equal(na.edges, nb.edges)

    def test_different_seeds_differ(self, w4):
        na = FaultInjector(seed=0).drop_edges(w4, count=5)
        nb = FaultInjector(seed=1).drop_edges(w4, count=5)
        assert not np.array_equal(na.edges, nb.edges)

    def test_count_semantics(self, w4):
        net = FaultInjector().drop_edges(w4, count=3)
        assert net.num_edges == w4.num_edges - 3
        assert net.num_nodes == w4.num_nodes

    def test_rate_zero_is_a_copy_with_the_same_name(self, w4):
        net = FaultInjector().drop_edges(w4, rate=0.0)
        assert net.name == w4.name
        assert np.array_equal(net.edges, w4.edges)

    def test_surviving_edges_are_a_subset(self, w4):
        net = FaultInjector(seed=2).drop_edges(w4, rate=0.25)
        original = {tuple(e) for e in w4.edges.tolist()}
        assert all(tuple(e) in original for e in net.edges.tolist())

    def test_exactly_one_of_rate_or_count(self, w4):
        inj = FaultInjector()
        with pytest.raises(ValueError, match="exactly one"):
            inj.drop_edges(w4)
        with pytest.raises(ValueError, match="exactly one"):
            inj.drop_edges(w4, rate=0.1, count=2)

    def test_rate_out_of_range(self, w4):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultInjector().drop_edges(w4, rate=1.5)


class TestDropNodes:
    def test_node_count_shrinks(self, w4):
        net = FaultInjector(seed=5).drop_nodes(w4, count=2)
        assert net.num_nodes == w4.num_nodes - 2

    def test_surviving_labels_come_from_the_original(self, w4):
        net = FaultInjector(seed=5).drop_nodes(w4, count=2)
        assert set(net.labels) <= set(w4.labels)

    def test_rate_zero_keeps_everything(self, w4):
        net = FaultInjector().drop_nodes(w4, rate=0.0)
        assert net.num_nodes == w4.num_nodes
        assert net.name == w4.name


class TestCrashToken:
    def test_none_is_a_no_op(self):
        maybe_crash(None)  # must not kill the test process

    def test_missing_token_is_a_no_op(self, tmp_path):
        maybe_crash(tmp_path / "never-armed")

    def test_token_kills_exactly_once(self, tmp_path):
        token = arm_crash_token(tmp_path / "crash")
        p = multiprocessing.Process(target=maybe_crash, args=(str(token),))
        p.start()
        p.join(10)
        assert p.exitcode == -signal.SIGKILL
        assert not token.exists()
        # Second consumer finds the token gone and survives.
        q = multiprocessing.Process(target=maybe_crash, args=(str(token),))
        q.start()
        q.join(10)
        assert q.exitcode == 0
