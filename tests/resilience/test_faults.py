"""Fault injection: seeded topology faults, crash tokens, crash schedules."""

import multiprocessing
import signal

import numpy as np
import pytest

from repro.resilience import (
    CrashSchedule,
    FaultInjector,
    arm_crash_token,
    maybe_crash,
)


class TestDropEdges:
    def test_seeded_sequences_replay_identically(self, w4):
        a = FaultInjector(seed=3)
        b = FaultInjector(seed=3)
        for _ in range(3):
            na, nb = a.drop_edges(w4, rate=0.2), b.drop_edges(w4, rate=0.2)
            assert np.array_equal(na.edges, nb.edges)

    def test_different_seeds_differ(self, w4):
        na = FaultInjector(seed=0).drop_edges(w4, count=5)
        nb = FaultInjector(seed=1).drop_edges(w4, count=5)
        assert not np.array_equal(na.edges, nb.edges)

    def test_count_semantics(self, w4):
        net = FaultInjector().drop_edges(w4, count=3)
        assert net.num_edges == w4.num_edges - 3
        assert net.num_nodes == w4.num_nodes

    def test_rate_zero_is_a_copy_with_the_same_name(self, w4):
        net = FaultInjector().drop_edges(w4, rate=0.0)
        assert net.name == w4.name
        assert np.array_equal(net.edges, w4.edges)

    def test_surviving_edges_are_a_subset(self, w4):
        net = FaultInjector(seed=2).drop_edges(w4, rate=0.25)
        original = {tuple(e) for e in w4.edges.tolist()}
        assert all(tuple(e) in original for e in net.edges.tolist())

    def test_exactly_one_of_rate_or_count(self, w4):
        inj = FaultInjector()
        with pytest.raises(ValueError, match="exactly one"):
            inj.drop_edges(w4)
        with pytest.raises(ValueError, match="exactly one"):
            inj.drop_edges(w4, rate=0.1, count=2)

    def test_rate_out_of_range(self, w4):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultInjector().drop_edges(w4, rate=1.5)


class TestDropNodes:
    def test_node_count_shrinks(self, w4):
        net = FaultInjector(seed=5).drop_nodes(w4, count=2)
        assert net.num_nodes == w4.num_nodes - 2

    def test_surviving_labels_come_from_the_original(self, w4):
        net = FaultInjector(seed=5).drop_nodes(w4, count=2)
        assert set(net.labels) <= set(w4.labels)

    def test_rate_zero_keeps_everything(self, w4):
        net = FaultInjector().drop_nodes(w4, rate=0.0)
        assert net.num_nodes == w4.num_nodes
        assert net.name == w4.name


class TestCrashToken:
    def test_none_is_a_no_op(self):
        maybe_crash(None)  # must not kill the test process

    def test_missing_token_is_a_no_op(self, tmp_path):
        maybe_crash(tmp_path / "never-armed")

    def test_token_kills_exactly_once(self, tmp_path):
        token = arm_crash_token(tmp_path / "crash")
        p = multiprocessing.Process(target=maybe_crash, args=(str(token),))
        p.start()
        p.join(10)
        assert p.exitcode == -signal.SIGKILL
        assert not token.exists()
        # Second consumer finds the token gone and survives.
        q = multiprocessing.Process(target=maybe_crash, args=(str(token),))
        q.start()
        q.join(10)
        assert q.exitcode == 0

    def test_armer_is_immune_to_its_own_token(self, tmp_path):
        # Under fork, serial degradation can route the instrumented task
        # back into the arming process; the PID guard must keep it alive.
        token = arm_crash_token(tmp_path / "crash")
        maybe_crash(token)  # we armed it: must NOT kill this process
        assert token.exists()  # and must not consume it either
        # A forked child is not the armer and dies normally.
        p = multiprocessing.Process(target=maybe_crash, args=(str(token),))
        p.start()
        p.join(10)
        assert p.exitcode == -signal.SIGKILL
        assert not token.exists()


def _fire(sched_root, worker, claim):
    CrashSchedule(sched_root).maybe_crash(worker, claim)


class TestCrashSchedule:
    def test_explicit_plan_round_trips(self, tmp_path):
        sched = CrashSchedule.arm(tmp_path / "chaos", [(2, 0), (0, 1)])
        assert sched.events() == [(0, 1), (2, 0)]
        assert sched.pending() == [(0, 1), (2, 0)]

    def test_seeded_plans_replay_identically(self, tmp_path):
        a = CrashSchedule.seeded(tmp_path / "a", 7, workers=6, kills=3)
        b = CrashSchedule.seeded(tmp_path / "b", 7, workers=6, kills=3)
        assert a.events() == b.events()
        assert len(a.events()) == 3

    def test_seeded_kills_distinct_workers(self, tmp_path):
        sched = CrashSchedule.seeded(tmp_path / "c", 3, workers=4, kills=4)
        workers = [w for w, _ in sched.events()]
        assert sorted(workers) == [0, 1, 2, 3]
        # Default spread=1: every kill lands on the victim's first claim,
        # so any doomed worker that ever wins work is guaranteed to die.
        assert all(c == 0 for _, c in sched.events())

    def test_more_kills_than_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot kill"):
            CrashSchedule.seeded(tmp_path / "d", 0, workers=2, kills=3)

    def test_unplanned_pairs_never_fire(self, tmp_path):
        sched = CrashSchedule.arm(tmp_path / "chaos", [(1, 0)])
        sched.maybe_crash(0, 0)  # not in the plan: survives
        sched.maybe_crash(1, 1)  # planned worker, wrong ordinal: survives
        assert sched.pending() == [(1, 0)]

    def test_planned_kill_fires_exactly_once_across_processes(self, tmp_path):
        sched = CrashSchedule.arm(tmp_path / "chaos", [(1, 0)])
        p = multiprocessing.Process(
            target=_fire, args=(str(sched.root), 1, 0)
        )
        p.start()
        p.join(10)
        assert p.exitcode == -signal.SIGKILL
        # The manifest (replayability) survives; the token does not.
        assert sched.events() == [(1, 0)]
        assert sched.pending() == []
        # A second worker replaying the same (worker, claim) pair lives.
        q = multiprocessing.Process(
            target=_fire, args=(str(sched.root), 1, 0)
        )
        q.start()
        q.join(10)
        assert q.exitcode == 0

    def test_arming_process_cannot_kill_itself(self, tmp_path):
        sched = CrashSchedule.arm(tmp_path / "chaos", [(0, 0)])
        sched.maybe_crash(0, 0)  # armer PID guard: no SIGKILL, no claim
        assert sched.pending() == [(0, 0)]

    def test_missing_manifest_reads_as_empty_plan(self, tmp_path):
        assert CrashSchedule(tmp_path / "nowhere").events() == []
        assert CrashSchedule(tmp_path / "nowhere").pending() == []
