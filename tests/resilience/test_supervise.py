"""The supervised pool: retries, hang detection, serial fallback, no leaks.

Task functions live at module level (the pool pickles them).  One-shot
failure modes are keyed on a filesystem token so that exactly the first
attempt misbehaves and the retry succeeds, whichever process runs it.
"""

import multiprocessing
import os
import time

import pytest

from repro import obs
from repro.resilience import (
    Budget,
    RetryPolicy,
    SupervisionReport,
    supervised_map,
)
from repro.resilience.faults import arm_crash_token, maybe_crash

_FAST = RetryPolicy(task_timeout=10.0, max_retries=2, backoff=0.01)


def _square(x):
    return x * x


def _raise_once(arg):
    token, x = arg
    try:
        os.unlink(token)
    except FileNotFoundError:
        return x
    raise RuntimeError("transient failure")


def _fail_in_children(arg):
    parent_pid, x = arg
    if os.getpid() != parent_pid:
        raise RuntimeError("this task only works in the parent")
    return x


def _hang_once(arg):
    token, x = arg
    try:
        os.unlink(token)
    except FileNotFoundError:
        return x
    time.sleep(60)
    return x


def _always_raise(_x):
    raise RuntimeError("permanent failure")


def _die_once(arg):
    # The first pool worker to run this consumes the token and SIGKILLs
    # itself mid-task (an OOM kill); the retry finds the token gone.
    token, x = arg
    maybe_crash(token)
    return x * x


def _no_leaked_children(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestHappyPath:
    def test_maps_in_order(self):
        report = SupervisionReport()
        out = supervised_map(
            _square, [1, 2, 3, 4, 5], workers=2, policy=_FAST, report=report
        )
        assert out == [1, 4, 9, 16, 25]
        assert report.complete and report.retries == 0
        assert _no_leaked_children()

    def test_serial_when_single_worker(self):
        report = SupervisionReport()
        out = supervised_map(_square, [3, 4], workers=1, report=report)
        assert out == [9, 16]
        assert report.serial_tasks == 2

    def test_empty_tasks(self):
        assert supervised_map(_square, [], workers=4) == []

    def test_on_result_sees_every_completion(self):
        seen = []
        supervised_map(
            _square, [2, 3], workers=2, policy=_FAST,
            on_result=lambda i, task, value: seen.append((i, task, value)),
        )
        assert sorted(seen) == [(0, 2, 4), (1, 3, 9)]


class TestFailureModes:
    def test_worker_exception_is_retried(self, tmp_path):
        token = str(arm_crash_token(tmp_path / "raise-once"))
        report = SupervisionReport()
        out = supervised_map(
            _raise_once, [(token, 7)], workers=2, policy=_FAST, report=report
        )
        assert out == [7]
        assert report.complete
        assert not os.path.exists(token)
        # One failed pool attempt recorded, no serial degradation.
        assert report.task_attempts == {0: 1}
        assert report.degraded_tasks == []

    def test_persistent_failure_degrades_to_serial(self):
        # Fails in every pool worker (wrong pid) but succeeds in the parent
        # after the retry cap — exactness survives a poisoned pool.
        report = SupervisionReport()
        policy = RetryPolicy(task_timeout=10.0, max_retries=1, backoff=0.01)
        out = supervised_map(
            _fail_in_children, [(os.getpid(), 5)], workers=2,
            policy=policy, report=report,
        )
        assert out == [5]
        assert report.serial_tasks == 1
        assert report.failures >= 2  # initial attempt + retry both failed
        # The degradation history is not swallowed: both failed pool
        # attempts are on record, and the task is named as degraded.
        assert report.task_attempts == {0: 2}
        assert report.degraded_tasks == [0]

    def test_hung_worker_detected_by_timeout(self, tmp_path):
        token = str(arm_crash_token(tmp_path / "hang-once"))
        report = SupervisionReport()
        policy = RetryPolicy(task_timeout=0.5, max_retries=2, backoff=0.01)
        out = supervised_map(
            _hang_once, [(token, 9)], workers=2, policy=policy, report=report
        )
        assert out == [9]
        assert report.timeouts >= 1
        assert _no_leaked_children()

    def test_sigkilled_worker_mid_task_is_reclaimed(self, tmp_path):
        """Worker death, not just worker exception: the process running
        the task is SIGKILLed, its in-flight task is lost, and the pool
        must notice (deadline), retry, and still return the right answer
        without leaking children."""
        token = str(arm_crash_token(tmp_path / "die-once"))
        report = SupervisionReport()
        policy = RetryPolicy(task_timeout=1.0, max_retries=2, backoff=0.01)
        with obs.collecting() as col:
            out = supervised_map(
                _die_once, [(token, 6)], workers=2, policy=policy,
                report=report,
            )
        assert out == [36]
        assert report.complete
        assert not os.path.exists(token)  # the kill actually fired
        # The reclaim is on the record: a lost attempt, a timeout, and
        # the published pool counters all agree.
        assert report.task_attempts == {0: 1}
        assert report.timeouts == 1
        assert report.retries == 1
        assert report.degraded_tasks == []
        assert col.counters["pool.task_timeouts"] == 1
        assert col.counters["pool.retries"] == 1
        assert _no_leaked_children()

    def test_sigkilled_worker_in_a_batch_keeps_order(self, tmp_path):
        # The death of one worker must not disturb the other tasks'
        # results or ordering.
        token = str(arm_crash_token(tmp_path / "die-once-batch"))
        policy = RetryPolicy(task_timeout=1.0, max_retries=2, backoff=0.01)
        tasks = [(token, x) for x in (1, 2, 3, 4)]
        report = SupervisionReport()
        out = supervised_map(
            _die_once, tasks, workers=2, policy=policy, report=report
        )
        assert out == [1, 4, 9, 16]
        assert report.complete
        assert _no_leaked_children()

    def test_parent_exception_terminates_pool(self):
        policy = RetryPolicy(task_timeout=10.0, max_retries=0, backoff=0.01)
        with pytest.raises(RuntimeError, match="permanent failure"):
            supervised_map(_always_raise, [1], workers=2, policy=policy)
        assert _no_leaked_children()


class TestObservability:
    def test_degradation_publishes_pool_counters(self):
        policy = RetryPolicy(task_timeout=10.0, max_retries=1, backoff=0.01)
        with obs.collecting() as col:
            out = supervised_map(
                _fail_in_children, [(os.getpid(), 5)], workers=2,
                policy=policy,
            )
        assert out == [5]
        counters = col.counters
        assert counters["pool.worker_failures"] >= 2
        assert counters["pool.retries"] == 1
        assert counters["pool.serial_degrades"] == 1
        assert _no_leaked_children()

    def test_clean_run_publishes_no_failure_counters(self):
        with obs.collecting() as col:
            out = supervised_map(_square, [2, 3], workers=2, policy=_FAST)
        assert out == [4, 9]
        assert not any(k.startswith("pool.") for k in col.counters)

    def test_timeout_counter(self, tmp_path):
        token = str(arm_crash_token(tmp_path / "hang-once-obs"))
        policy = RetryPolicy(task_timeout=0.5, max_retries=2, backoff=0.01)
        with obs.collecting() as col:
            out = supervised_map(
                _hang_once, [(token, 9)], workers=2, policy=policy
            )
        assert out == [9]
        assert col.counters["pool.task_timeouts"] >= 1
        assert _no_leaked_children()


class TestBudget:
    def test_expired_budget_returns_partial(self):
        report = SupervisionReport()
        out = supervised_map(
            _square, [1, 2, 3], workers=2, policy=_FAST,
            budget=Budget(0), report=report,
        )
        assert out == [None, None, None]
        assert not report.complete
        assert _no_leaked_children()

    def test_serial_path_respects_budget_between_tasks(self):
        t = {"v": 0.0}

        def clock():
            t["v"] += 1.0
            return t["v"]

        report = SupervisionReport()
        out = supervised_map(
            _square, [1, 2, 3, 4], workers=1,
            budget=Budget(2.5, clock=clock), report=report,
        )
        # Polls before each task: the third poll is past the deadline.
        assert out == [1, 4, None, None]
        assert report.completed == 2 and not report.complete


class TestPoolTelemetry:
    def test_pool_workers_journal_shards_that_merge(self, tmp_path):
        from repro.obs import merge_shards, validate_timeline

        report = SupervisionReport()
        out = supervised_map(
            _square, [1, 2, 3, 4, 5, 6], workers=2, policy=_FAST,
            report=report, telemetry=str(tmp_path / "tele"),
        )
        assert out == [1, 4, 9, 16, 25, 36]
        tele = report.telemetry
        assert tele is not None and tele["run_id"]
        assert tele["shard_files"]  # every worker journaled a shard

        doc = merge_shards(tele["shard_files"], run_id=tele["run_id"])
        assert validate_timeline(doc) == []
        spans = [s for s in doc["spans"] if s["name"] == "pool.task"]
        assert len(spans) == 6  # one flushed span per task
        assert _no_leaked_children()

    def test_serial_fallback_keeps_ambient_collector(self, tmp_path):
        # A traced parent (manifest collector active) running the serial
        # path must keep its own collector: pool telemetry is for fresh
        # worker processes, not for hijacking the parent's trace.
        report = SupervisionReport()
        with obs.collecting() as col:
            out = supervised_map(
                _square, [2, 3], workers=1, report=report,
                telemetry=str(tmp_path / "tele"),
            )
            assert obs.current() is col
        assert out == [4, 9]
        # No pool shard was journaled in the parent.
        assert report.telemetry["shard_files"] == []

    def test_wire_dict_nests_under_enclosing_context(self, tmp_path):
        from repro.obs import TraceContext, read_shard

        wire = {"dir": str(tmp_path / "tele"),
                "context": TraceContext("outer-run", 3).to_wire()}
        report = SupervisionReport()
        supervised_map(
            _square, [1, 2, 3, 4], workers=2, policy=_FAST,
            report=report, telemetry=wire,
        )
        assert report.telemetry["run_id"] == "outer-run"
        for path in report.telemetry["shard_files"]:
            header = read_shard(path)["header"]
            assert header["run_id"] == "outer-run"
            assert header["parent_span_id"] == 3
        assert _no_leaked_children()
