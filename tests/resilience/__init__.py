"""Tests for the resilience layer (budgets, checkpoints, supervision, faults)."""
