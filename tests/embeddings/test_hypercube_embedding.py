"""The Gray-code embedding of Bn into the hypercube (Section 1.5)."""

import numpy as np
import pytest

from repro.embeddings import butterfly_into_hypercube, gray_code


class TestGrayCode:
    def test_consecutive_differ_one_bit(self):
        for i in range(100):
            assert (gray_code(i) ^ gray_code(i + 1)).bit_count() == 1

    def test_injective(self):
        vals = [gray_code(i) for i in range(64)]
        assert len(set(vals)) == 64

    def test_zero(self):
        assert gray_code(0) == 0


class TestEmbedding:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_verified_constant_parameters(self, n):
        emb, bf, q = butterfly_into_hypercube(n)
        emb.verify()
        assert emb.load == 1
        assert emb.dilation <= 2
        assert emb.congestion <= 4  # constant, independent of n

    def test_host_dimension(self):
        emb, bf, q = butterfly_into_hypercube(8)
        # log n = 3 levels bits: ceil(log2(4)) = 2 -> Q5.
        assert q.d == 5

    def test_straight_edges_are_hypercube_edges(self):
        """Straight butterfly edges differ only in the Gray level bit."""
        emb, bf, q = butterfly_into_hypercube(8)
        for (u, v), path in zip(bf.edges, emb.paths):
            if bf.column_of(int(u)) == bf.column_of(int(v)):
                assert len(path) == 2  # dilation 1 on straight edges

    def test_node_images_distinct(self):
        emb, bf, q = butterfly_into_hypercube(16)
        assert len(np.unique(emb.node_map)) == bf.num_nodes
