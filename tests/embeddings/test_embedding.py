"""The embedding framework (Section 1.4 quantities)."""

import numpy as np
import pytest

from repro.embeddings import Embedding
from repro.topology import Network


def hosts():
    guest = Network(["x", "y"], [(0, 1)], name="guest")
    host = Network(range(3), [(0, 1), (1, 2)], name="host")
    return guest, host


class TestMeasurement:
    def test_load(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([0, 2]), [np.array([0, 1, 2])])
        assert emb.load == 1
        emb2 = Embedding(guest, host, np.array([0, 0]), [np.array([0])])
        assert emb2.load == 2

    def test_dilation(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([0, 2]), [np.array([0, 1, 2])])
        assert emb.dilation == 2

    def test_congestion_counts_traversals(self):
        guest = Network(["x", "y", "z"], [(0, 1), (0, 2)], name="guest")
        host = Network(range(3), [(0, 1), (1, 2)], name="host")
        emb = Embedding(
            guest, host, np.array([0, 2, 2]),
            [np.array([0, 1, 2]), np.array([0, 1, 2])],
        )
        assert emb.congestion == 2
        assert emb.edge_congestions() == {(0, 1): 2, (1, 2): 2}

    def test_zero_length_paths(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([1, 1]), [np.array([1])])
        assert emb.dilation == 0
        assert emb.congestion == 0

    def test_path_count_check(self):
        guest, host = hosts()
        with pytest.raises(ValueError):
            Embedding(guest, host, np.array([0, 2]), [])

    def test_node_map_shape_check(self):
        guest, host = hosts()
        with pytest.raises(ValueError):
            Embedding(guest, host, np.array([0]), [np.array([0, 1, 2])])


class TestVerify:
    def test_valid_passes(self):
        guest, host = hosts()
        Embedding(guest, host, np.array([0, 2]), [np.array([0, 1, 2])]).verify()

    def test_detects_non_edges(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([0, 2]), [np.array([0, 2])])
        with pytest.raises(AssertionError, match="not a host edge"):
            emb.verify()

    def test_detects_wrong_endpoints(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([0, 2]), [np.array([0, 1])])
        with pytest.raises(AssertionError, match="endpoints"):
            emb.verify()

    def test_summary_keys(self):
        guest, host = hosts()
        emb = Embedding(guest, host, np.array([0, 2]), [np.array([0, 1, 2])])
        assert set(emb.summary()) == {"load", "congestion", "dilation"}
