"""Every specific embedding of the paper, verified against its lemma."""

import numpy as np
import pytest

from repro.embeddings import (
    benes_into_butterfly,
    bisection_lower_bound,
    butterfly_into_butterfly,
    butterfly_into_mos,
    complete_bipartite_into_butterfly,
    complete_into_wrapped,
    doubled_complete_bisection_bound,
    doubled_complete_into_butterfly,
    edge_expansion_lower_bound,
    io_cut_lower_bound,
    io_partition,
    wrapped_into_ccc,
)
from repro.topology import butterfly


class TestLemma211MOS:
    @pytest.mark.parametrize("n,j,k", [(16, 2, 2), (16, 2, 4), (64, 4, 8), (64, 8, 8)])
    def test_all_properties(self, n, j, k):
        bf = butterfly(n)
        emb, mos = butterfly_into_mos(bf, j, k)
        emb.verify()
        assert emb.dilation <= 1
        assert set(emb.edge_congestions().values()) == {2 * n // (j * k)}
        loads = emb.load_per_host_node
        lgj, lgk, lg = (j).bit_length() - 1, (k).bit_length() - 1, bf.lg
        assert set(loads[mos.m1()].tolist()) == {(n // j) * lgk}
        assert set(loads[mos.m3()].tolist()) == {(n // k) * lgj}
        assert set(loads[mos.m2()].tolist()) == {(n // (j * k)) * (lg - lgj - lgk + 1)}

    def test_square_case_m2_load_one(self):
        """jk = n: each M2 fiber is a single node (used by Lemma 2.13)."""
        bf = butterfly(16)
        emb, mos = butterfly_into_mos(bf, 4, 4)
        assert set(emb.load_per_host_node[mos.m2()].tolist()) == {1}

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            butterfly_into_mos(butterfly(16), 8, 8)


class TestLemma210Squeeze:
    @pytest.mark.parametrize("n,j,i", [(4, 1, 0), (8, 2, 1), (8, 1, 3), (16, 1, 2)])
    def test_all_properties(self, n, j, i):
        emb, big, host = butterfly_into_butterfly(n, j, i)
        emb.verify()
        assert emb.dilation <= 1
        assert set(emb.edge_congestions().values()) == {1 << j}
        loads = emb.load_per_host_node
        lv = np.arange(host.num_nodes) // host.n
        assert set(loads[lv == i].tolist()) == {(j + 1) << j}
        if (lv != i).any():
            assert set(loads[lv != i].tolist()) == {1 << j}

    def test_identity_case(self):
        emb, big, host = butterfly_into_butterfly(8, 0, 0)
        assert emb.load == 1 and emb.congestion == 1


class TestLemma31Bipartite:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_parameters(self, n):
        emb, host = complete_bipartite_into_butterfly(n)
        emb.verify()
        assert emb.load == 1
        assert emb.congestion == n // 2
        assert emb.dilation == host.lg

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_io_bound_is_n(self, n):
        assert io_cut_lower_bound(n) == n

    def test_bound_tight_against_exact(self, b8):
        """The embedding bound meets the exact DP value (Lemma 3.1)."""
        from repro.cuts import layered_u_bisection_width

        assert io_cut_lower_bound(8) == layered_u_bisection_width(b8, b8.inputs())


class TestTheorem43Complete:
    @pytest.mark.parametrize("n", [4, 8])
    def test_verified(self, n):
        emb, host = complete_into_wrapped(n)
        emb.verify()
        assert emb.load == 1
        N = host.num_nodes
        # Congestion is O(N log n): generous constant check.
        assert emb.congestion <= 4 * N * host.lg

    def test_ee_lower_bounds_hold(self, w8):
        """EE(Wn, k) >= k N / 2c with measured c, against exact EE."""
        from repro.expansion import edge_expansion_profile

        emb, host = complete_into_wrapped(8)
        prof = edge_expansion_profile(host)
        for k in range(1, host.num_nodes // 2):
            assert edge_expansion_lower_bound(emb, k) <= prof[k]


class TestDoubledComplete:
    @pytest.mark.parametrize("n", [4, 8])
    def test_verified_load_one(self, n):
        emb, host = doubled_complete_into_butterfly(n)
        emb.verify()
        assert emb.load == 1

    @pytest.mark.parametrize("n", [4, 8])
    def test_bound_reaches_half_n(self, n):
        emb, host = doubled_complete_into_butterfly(n)
        assert doubled_complete_bisection_bound(emb) == n // 2

    def test_deterministic_under_seed(self):
        e1, _ = doubled_complete_into_butterfly(4, seed=9)
        e2, _ = doubled_complete_into_butterfly(4, seed=9)
        assert all(np.array_equal(a, b) for a, b in zip(e1.paths, e2.paths))


class TestLemma33CCC:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_parameters(self, n):
        emb, host = wrapped_into_ccc(n)
        emb.verify()
        assert emb.load == 1
        assert emb.congestion == 2
        assert emb.dilation == 2

    def test_derived_bound(self):
        emb, host = wrapped_into_ccc(8)
        assert bisection_lower_bound(emb, 8) == 4  # BW(W8) = 8 exactly


class TestLemma25Benes:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_parameters(self, n):
        emb, guest, host = benes_into_butterfly(n)
        emb.verify()
        assert emb.summary() == {"load": 1, "congestion": 1, "dilation": 3}

    def test_io_on_level_zero(self):
        emb, guest, host = benes_into_butterfly(16)
        ins = emb.node_map[guest.inputs()]
        outs = emb.node_map[guest.outputs()]
        assert (host.level_of(ins) == 0).all()
        assert (host.level_of(outs) == 0).all()

    def test_io_partition_halves(self, b16):
        i_set, o_set = io_partition(b16)
        assert len(i_set) == len(o_set) == 8
        assert not set(i_set.tolist()) & set(o_set.tolist())


class TestLowerBoundGuards:
    def test_load_one_required(self):
        from repro.embeddings import Embedding
        from repro.topology import Network

        guest = Network(["x", "y"], [(0, 1)])
        host = Network(range(2), [(0, 1)])
        emb = Embedding(guest, host, np.array([0, 0]), [np.array([0])])
        with pytest.raises(ValueError, match="load 1"):
            bisection_lower_bound(emb, 1)
