"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_manifest


class TestCLI:
    def test_info(self, capsys):
        assert main(["info", "8"]) == 0
        out = capsys.readouterr().out
        assert "B8" in out and "32 nodes" in out

    def test_info_wraparound(self, capsys):
        assert main(["info", "8", "--wraparound"]) == 0
        assert "W8" in capsys.readouterr().out

    def test_bisection(self, capsys):
        assert main(["bisection", "bn", "8"]) == 0
        assert "BW(B8) = 8" in capsys.readouterr().out

    def test_bisection_ccc(self, capsys):
        assert main(["bisection", "ccc", "8"]) == 0
        assert "BW(CCC8) = 4" in capsys.readouterr().out

    def test_expansion(self, capsys):
        assert main(["expansion", "wn", "8", "4"]) == 0
        assert "EE(W8, 4)" in capsys.readouterr().out

    def test_expansion_node(self, capsys):
        assert main(["expansion", "bn", "8", "4", "--node"]) == 0
        assert "NE(B8, 4)" in capsys.readouterr().out

    def test_folklore_plan_only(self, capsys):
        assert main(["folklore", "4096", "--plan-only"]) == 0
        out = capsys.readouterr().out
        assert "0.9375" in out

    def test_folklore_built(self, capsys):
        assert main(["folklore", "1024"]) == 0
        out = capsys.readouterr().out
        assert "built and verified" in out

    def test_claims_subset(self, capsys):
        assert main(["claims", "lemma-2.18", "lemma-2.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2

    def test_claims_unknown_id(self, capsys):
        assert main(["claims", "lemma-9.9"]) == 1

    def test_solve_without_trace(self, capsys):
        assert main(["solve", "bn", "8"]) == 0
        assert "BW(B8) = 8" in capsys.readouterr().out


class TestSolveTrace:
    def test_trace_writes_schema_valid_manifest(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        # "bn 3" is the dimension convenience: B8, 32 nodes, so tier-1
        # enumeration is skipped and the layered DP wins exactly.
        assert main(["solve", "bn", "3", "--trace", str(path)]) == 0
        assert "BW(B8) = 8" in capsys.readouterr().out
        data = json.loads(path.read_text())
        assert validate_manifest(data) == []
        assert data["tier"] == "tier-2"
        assert data["command"] == ["solve", "bn", "3"]
        assert data["result"]["exact"] is True
        # The acceptance bar: >= 3 distinct spans, >= 5 distinct counters.
        assert len({s["name"] for s in data["spans"]}) >= 3
        assert len(data["counters"]) >= 5

    def test_trace_records_budget(self, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["solve", "bn", "3", "--timeout", "30",
                     "--trace", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["budget"] == {"seconds": 30.0, "expired": False}

    def test_no_collector_leaks_after_traced_run(self, tmp_path):
        from repro import obs

        assert main(["solve", "bn", "3",
                     "--trace", str(tmp_path / "m.json")]) == 0
        assert not obs.enabled()


class TestStats:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        path = tmp_path / "manifest.json"
        assert main(["solve", "bn", "3", "--trace", str(path)]) == 0
        return path

    def test_pretty_print(self, capsys, manifest_path):
        capsys.readouterr()
        assert main(["stats", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "winning tier: tier-2" in out
        assert "solve.fallback" in out
        assert "cuts.layered_dp.sweeps" in out

    def test_json_dump_round_trips(self, capsys, manifest_path):
        capsys.readouterr()
        assert main(["stats", str(manifest_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert validate_manifest(data) == []
        assert data["tier"] == "tier-2"

    def test_missing_file_fails(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "absent.json")]) == 1
        assert "stats:" in capsys.readouterr().err

    def test_invalid_manifest_fails_with_problems(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "wrong", "version": 1}))
        assert main(["stats", str(path)]) == 1
        err = capsys.readouterr().err
        assert "invalid manifest" in err and "kind" in err


class TestDist:
    def test_run_status_merge_round_trip(self, capsys, tmp_path):
        state = str(tmp_path / "st")
        cert = str(tmp_path / "cert.json")
        assert main([
            "dist", "run", "bn", "4", "--state", state,
            "--shards", "4", "--workers", "2", "--certificate", cert,
        ]) == 0
        out = capsys.readouterr().out
        assert "4/4 shards done" in out
        assert "BW(B4) = 4" in out
        data = json.loads(open(cert).read())
        assert (data["lower"], data["upper"]) == (4, 4)

        assert main(["dist", "status", "--state", state]) == 0
        out = capsys.readouterr().out
        assert "done=4" in out

        merged = str(tmp_path / "merged.json")
        assert main([
            "dist", "merge", "--state", state, "--certificate", merged,
        ]) == 0
        again = json.loads(open(merged).read())
        assert (again["lower"], again["upper"]) == (4, 4)

    def test_status_on_missing_state(self, capsys, tmp_path):
        assert main(["dist", "status", "--state", str(tmp_path / "no")]) == 2
        assert "no coordinator state" in capsys.readouterr().err

    def test_solve_with_shards(self, capsys):
        assert main(["solve", "bn", "4", "--shards", "4"]) == 0
        assert "BW(B4) = 4" in capsys.readouterr().out


class TestTelemetryCLI:
    def _traced_run(self, tmp_path):
        state = str(tmp_path / "st")
        tele = tmp_path / "tele"
        rc = main([
            "dist", "run", "bn", "4", "--state", state,
            "--shards", "4", "--workers", "2", "--telemetry", str(tele),
        ])
        return rc, state, tele

    def test_dist_run_telemetry_writes_valid_timeline(self, capsys, tmp_path):
        from repro.obs import load_timeline, validate_timeline

        rc, _state, tele = self._traced_run(tmp_path)
        assert rc == 0
        err = capsys.readouterr().err
        assert "telemetry:" in err
        assert "critical path:" in err and "dist.run" in err
        timeline = load_timeline(tele / "timeline.json")
        assert validate_timeline(timeline) == []
        assert (tele / "parent.jsonl").exists()

    def test_status_watch_once_renders_progress(self, capsys, tmp_path):
        rc, state, _tele = self._traced_run(tmp_path)
        assert rc == 0
        capsys.readouterr()
        assert main([
            "dist", "status", "--state", state, "--watch", "--once",
        ]) == 0
        out = capsys.readouterr().out
        assert "100%" in out
        assert "done" in out

    def test_stats_renders_timeline_and_exports(self, capsys, tmp_path):
        rc, _state, tele = self._traced_run(tmp_path)
        assert rc == 0
        capsys.readouterr()
        timeline = str(tele / "timeline.json")
        assert main(["stats", timeline]) == 0
        out = capsys.readouterr().out
        assert "dist.run" in out and "critical path" in out

        om = tmp_path / "om.txt"
        flame = tmp_path / "flame.txt"
        # Export flags switch stats into quiet export mode (stderr notes).
        assert main([
            "stats", timeline,
            "--openmetrics", str(om), "--flame", str(flame),
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "openmetrics written" in captured.err
        om_text = om.read_text()
        assert om_text.endswith("# EOF\n")
        assert "repro_cuts_enumerate_cuts_evaluated_total 2048" in om_text
        flame_text = flame.read_text()
        assert any(ln.startswith("dist.run") for ln in flame_text.splitlines())

    def test_stats_timeline_json_round_trips(self, capsys, tmp_path):
        rc, _state, tele = self._traced_run(tmp_path)
        assert rc == 0
        capsys.readouterr()
        assert main(["stats", str(tele / "timeline.json"), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "repro-telemetry-timeline"

    def test_stats_rejects_invalid_timeline(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"kind": "repro-telemetry-timeline", "version": 1}
        ))
        assert main(["stats", str(path)]) == 1
        assert "invalid timeline" in capsys.readouterr().err

    def test_solve_dist_telemetry_flag(self, capsys, tmp_path):
        from repro.obs import load_timeline, validate_timeline

        tele = tmp_path / "tele"
        assert main([
            "solve", "bn", "4", "--shards", "4",
            "--dist-telemetry", str(tele),
        ]) == 0
        assert "BW(B4) = 4" in capsys.readouterr().out
        assert validate_timeline(load_timeline(tele / "timeline.json")) == []


class TestMainModule:
    def test_python_dash_m(self):
        import subprocess, sys

        out = subprocess.run(
            [sys.executable, "-m", "repro", "bisection", "ccc", "8"],
            capture_output=True, text=True,
        )
        assert out.returncode == 0
        assert "BW(CCC8) = 4" in out.stdout
