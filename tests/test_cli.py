"""The command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info", "8"]) == 0
        out = capsys.readouterr().out
        assert "B8" in out and "32 nodes" in out

    def test_info_wraparound(self, capsys):
        assert main(["info", "8", "--wraparound"]) == 0
        assert "W8" in capsys.readouterr().out

    def test_bisection(self, capsys):
        assert main(["bisection", "bn", "8"]) == 0
        assert "BW(B8) = 8" in capsys.readouterr().out

    def test_bisection_ccc(self, capsys):
        assert main(["bisection", "ccc", "8"]) == 0
        assert "BW(CCC8) = 4" in capsys.readouterr().out

    def test_expansion(self, capsys):
        assert main(["expansion", "wn", "8", "4"]) == 0
        assert "EE(W8, 4)" in capsys.readouterr().out

    def test_expansion_node(self, capsys):
        assert main(["expansion", "bn", "8", "4", "--node"]) == 0
        assert "NE(B8, 4)" in capsys.readouterr().out

    def test_folklore_plan_only(self, capsys):
        assert main(["folklore", "4096", "--plan-only"]) == 0
        out = capsys.readouterr().out
        assert "0.9375" in out

    def test_folklore_built(self, capsys):
        assert main(["folklore", "1024"]) == 0
        out = capsys.readouterr().out
        assert "built and verified" in out

    def test_claims_subset(self, capsys):
        assert main(["claims", "lemma-2.18", "lemma-2.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2

    def test_claims_unknown_id(self, capsys):
        assert main(["claims", "lemma-9.9"]) == 1


class TestMainModule:
    def test_python_dash_m(self):
        import subprocess, sys

        out = subprocess.run(
            [sys.executable, "-m", "repro", "bisection", "ccc", "8"],
            capture_output=True, text=True,
        )
        assert out.returncode == 0
        assert "BW(CCC8) = 4" in out.stdout
