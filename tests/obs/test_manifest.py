"""Manifest build / atomic write / load round-trip and validation."""

import json

import pytest

from repro import obs
from repro.obs import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)


def _collected():
    with obs.collecting() as col:
        with obs.trace("solve.fallback", network="B8"):
            with obs.trace("solve.tier2.layered_dp"):
                obs.incr("cuts.layered_dp.sweeps")
        obs.incr("solve.tiers_run", 2)
        obs.gauge("queue.depth", 3.0)
        obs.annotate("winning_tier", "tier-2")
    return col


class TestBuildManifest:
    def test_shape_and_defaults(self):
        m = build_manifest(_collected(), command=["solve", "bn", "3"],
                           seed=7, budget={"seconds": 30, "expired": False},
                           result={"lower": 8, "upper": 8})
        assert m["kind"] == MANIFEST_KIND
        assert m["version"] == MANIFEST_VERSION
        assert m["command"] == ["solve", "bn", "3"]
        assert m["seed"] == 7
        # tier defaults to the collector's winning_tier note.
        assert m["tier"] == "tier-2"
        assert m["counters"]["solve.tiers_run"] == 2
        assert {s["name"] for s in m["spans"]} == {
            "solve.fallback", "solve.tier2.layered_dp",
        }
        assert isinstance(m["environment"]["python"], str)
        assert validate_manifest(m) == []

    def test_explicit_tier_wins(self):
        m = build_manifest(_collected(), tier="tier-4")
        assert m["tier"] == "tier-4"


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        m = build_manifest(_collected())
        assert write_manifest(path, m) == path
        loaded = load_manifest(path)
        assert validate_manifest(loaded) == []
        assert loaded["counters"] == m["counters"]
        assert loaded["tier"] == "tier-2"

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "deep" / "manifest.json"
        write_manifest(path, build_manifest(_collected()))
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_overwrite_replaces(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_manifest(path, build_manifest(_collected()))
        m2 = build_manifest(_collected(), seed=99)
        write_manifest(path, m2)
        assert load_manifest(path)["seed"] == 99

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_load_rejects_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "repro-obs-mani')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_manifest(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_manifest(path)


class TestValidate:
    def test_valid_manifest_passes(self):
        assert validate_manifest(build_manifest(_collected())) == []

    def test_wrong_kind_and_version(self):
        m = build_manifest(_collected())
        m["kind"] = "something-else"
        m["version"] = 999
        problems = validate_manifest(m)
        assert any("kind" in p for p in problems)
        assert any("version" in p for p in problems)

    def test_span_field_problems(self):
        m = build_manifest(_collected())
        m["spans"] = [{"name": 42, "start": "zero", "duration": -1.0,
                       "depth": -3}]
        problems = validate_manifest(m)
        assert any(".name" in p for p in problems)
        assert any(".start" in p for p in problems)
        assert any("negative" in p for p in problems)
        assert any(".depth" in p for p in problems)

    def test_counter_and_gauge_types(self):
        m = build_manifest(_collected())
        m["counters"] = {"ok": 1, "bad": 2.5, "bool": True}
        m["gauges"] = {"ok": 1.5, "bad": "high"}
        problems = validate_manifest(m)
        assert any("'bad'" in p and "integer" in p for p in problems)
        assert any("'bool'" in p for p in problems)
        assert any("'bad'" in p and "number" in p for p in problems)

    def test_not_an_object(self):
        assert validate_manifest(["nope"]) == ["manifest is not an object"]

    def test_environment_required(self):
        m = build_manifest(_collected())
        del m["environment"]
        assert any("environment" in p for p in validate_manifest(m))

    def test_json_serializable_with_default_str(self):
        # The writer serializes with default=str, so exotic note values
        # degrade to strings rather than crashing the dump.
        with obs.collecting() as col:
            obs.annotate("exact", True)
        m = build_manifest(col)
        text = json.dumps(m, default=str)
        assert json.loads(text)["notes"]["exact"] is True
