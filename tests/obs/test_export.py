"""Folded flame stacks and the OpenMetrics exposition."""

from repro.obs import (
    folded_stacks,
    openmetrics_lines,
    write_folded,
    write_openmetrics,
)


def _span(sid, parent, name, duration, **extra):
    return {"id": sid, "parent_id": parent, "name": name, "worker": "w",
            "start": 0.0, "duration": duration, "truncated": False, **extra}


class TestFoldedStacks:
    def test_self_time_subtracts_direct_children(self):
        doc = {"spans": [
            _span("p/1", None, "dist.run", 10.0),
            _span("w/1", "p/1", "dist.claim", 4.0),
            _span("w/2", "p/1", "dist.claim", 3.0),
        ]}
        lines = folded_stacks(doc)
        # Root self time: 10 - (4 + 3) = 3s -> 3_000_000 µs; the two
        # claims share a frame chain and aggregate.
        assert lines == [
            "dist.run 3000000",
            "dist.run;dist.claim 7000000",
        ]

    def test_negative_self_time_clamps_to_zero(self):
        doc = {"spans": [
            _span("p/1", None, "root", 1.0),
            _span("w/1", "p/1", "child", 5.0),  # truncated child outlives
        ]}
        assert "root 0" in folded_stacks(doc)

    def test_unresolvable_parent_is_a_root(self):
        doc = {"spans": [_span("w/1", "ghost/9", "orphan", 2.0)]}
        assert folded_stacks(doc) == ["orphan 2000000"]

    def test_cycle_guard_terminates(self):
        doc = {"spans": [
            _span("a", "b", "a", 1.0),
            _span("b", "a", "b", 1.0),
        ]}
        lines = folded_stacks(doc)
        assert len(lines) == 2  # no hang, both spans rendered

    def test_write_folded_file(self, tmp_path):
        doc = {"spans": [_span("p/1", None, "run", 1.0)]}
        path = write_folded(tmp_path / "flame.txt", doc)
        assert path.read_text() == "run 1000000\n"


class TestOpenMetrics:
    def test_counters_gauges_and_run_info(self):
        doc = {
            "run_id": "run-1",
            "counters": {"cuts.enumerate.cuts_evaluated": 2048},
            "gauges": {"dist.shard.3.progress": 0.5},
            "spans": [_span("p/1", None, "run", 1.0)],
        }
        lines = openmetrics_lines(doc)
        assert 'repro_run_info{run_id="run-1"} 1' in lines
        assert "# TYPE repro_cuts_enumerate_cuts_evaluated counter" in lines
        assert "repro_cuts_enumerate_cuts_evaluated_total 2048" in lines
        assert "repro_dist_shard_3_progress 0.5" in lines
        assert "repro_timeline_spans 1" in lines
        assert lines[-1] == "# EOF"

    def test_name_sanitization(self):
        lines = openmetrics_lines({"counters": {"9weird name!": 1}})
        assert "repro__9weird_name_total 1" in lines

    def test_non_numeric_values_skipped(self):
        lines = openmetrics_lines(
            {"counters": {"bad": "x", "flag": True}, "gauges": {"g": None}}
        )
        assert lines == ["# EOF"]

    def test_deterministic_ordering(self):
        doc = {"counters": {"b": 2, "a": 1}}
        assert openmetrics_lines(doc) == openmetrics_lines(
            {"counters": {"a": 1, "b": 2}}
        )

    def test_write_openmetrics_file(self, tmp_path):
        path = write_openmetrics(tmp_path / "om.txt", {"counters": {"c": 3}})
        text = path.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_c_total 3" in text
