"""Span nesting, timing, and the module-level trace() fast path."""

import itertools

from repro import obs
from repro.obs import Collector


def _fake_clock(step=1.0):
    """A deterministic clock advancing ``step`` per call, starting at 100."""
    counter = itertools.count()
    return lambda: 100.0 + step * next(counter)


class TestSpanTiming:
    def test_duration_from_injected_clock(self):
        # Clock calls: t0 (construction), enter, exit -> duration = 1 tick.
        col = Collector(clock=_fake_clock())
        with col.span("work"):
            pass
        (span,) = col.spans
        assert span["name"] == "work"
        # Exact equality is safe: the injected clock steps in whole ticks.
        assert span["duration"] == 1
        # start is measured relative to collector construction (t0).
        assert span["start"] == 1

    def test_nesting_records_parent_and_depth(self):
        col = Collector(clock=_fake_clock())
        with col.span("outer"):
            with col.span("inner"):
                pass
            with col.span("sibling"):
                pass
        spans = {s["name"]: s for s in col.spans}
        assert spans["outer"]["parent"] is None
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["parent"] == "outer"
        assert spans["inner"]["depth"] == 1
        assert spans["sibling"]["parent"] == "outer"
        assert spans["sibling"]["depth"] == 1

    def test_spans_complete_in_exit_order(self):
        col = Collector(clock=_fake_clock())
        with col.span("outer"):
            with col.span("inner"):
                pass
        assert [s["name"] for s in col.spans] == ["inner", "outer"]

    def test_attrs_preserved(self):
        col = Collector(clock=_fake_clock())
        with col.span("enumerate", {"n": 3, "network": "B8"}):
            pass
        (span,) = col.spans
        assert span["attrs"] == {"n": 3, "network": "B8"}

    def test_span_closed_on_exception(self):
        col = Collector(clock=_fake_clock())
        try:
            with col.span("outer"):
                with col.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        spans = {s["name"]: s for s in col.spans}
        assert set(spans) == {"outer", "inner"}
        # The stack unwound: a fresh span is a root again.
        with col.span("after"):
            pass
        assert {s["name"]: s["depth"] for s in col.spans}["after"] == 0


class TestModuleFastPath:
    def test_trace_is_noop_when_disabled(self):
        assert not obs.enabled()
        cm = obs.trace("anything", n=1)
        with cm:
            pass
        # The disabled path hands back one shared singleton.
        assert cm is obs.trace("other")

    def test_trace_records_when_collecting(self):
        with obs.collecting() as col:
            assert obs.enabled()
            assert obs.current() is col
            with obs.trace("step", k=2):
                pass
        assert not obs.enabled()
        (span,) = col.spans
        assert span["name"] == "step"
        assert span["attrs"] == {"k": 2}
        assert span["duration"] >= 0.0

    def test_collecting_restores_previous_collector(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                obs.incr("seen")
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None
        assert inner.counters == {"seen": 1}
        assert outer.counters == {}

    def test_annotate_and_gauge(self):
        with obs.collecting() as col:
            obs.annotate("winning_tier", "tier-2")
            obs.gauge("queue.depth", 7.5)
        assert col.notes == {"winning_tier": "tier-2"}
        assert col.gauges == {"queue.depth": 7.5}

    def test_snapshot_shape(self):
        with obs.collecting() as col:
            with obs.trace("a"):
                obs.incr("c", 2)
        snap = col.snapshot()
        assert set(snap) == {"spans", "counters", "gauges", "notes"}
        assert snap["counters"] == {"c": 2}
        assert [s["name"] for s in snap["spans"]] == ["a"]
