"""Guard: the disabled obs fast path allocates nothing in hot loops.

The solvers carry ``incr``/``trace`` calls unconditionally inside tight
loops, betting that the disabled path (no active collector) is one global
read plus a comparison.  This test holds the counter path to literally
zero net allocations across a hot loop, via the CPython block allocator's
own bookkeeping (``sys.getallocatedblocks``).
"""

import sys

import pytest

from repro import obs

pytestmark = pytest.mark.skipif(
    not hasattr(sys, "getallocatedblocks"),
    reason="needs sys.getallocatedblocks (CPython)",
)


def _net_blocks(fn, iterations=10_000, repeats=5):
    """Best-case net allocated-block delta across a hot loop of ``fn``.

    The minimum over several repeats filters one-time noise (freelist
    growth, lazily-built caches); a loop that truly allocates leaks a
    positive delta on every repeat.
    """
    deltas = []
    for _ in range(repeats):
        # Warm up: let caches (method lookups, int freelists) settle.
        for _ in range(100):
            fn()
        before = sys.getallocatedblocks()
        for _ in range(iterations):
            fn()
        deltas.append(sys.getallocatedblocks() - before)
    return min(deltas)


def test_disabled_incr_allocates_nothing():
    assert not obs.enabled()
    # The empty lambda bounds the harness's own bookkeeping (the `before`
    # int, the loop counter); the counter call must add nothing to it.
    baseline = _net_blocks(lambda: None)
    assert _net_blocks(lambda: obs.incr("hot.loop")) <= baseline


def test_disabled_gauge_and_annotate_allocate_nothing():
    assert not obs.enabled()
    baseline = _net_blocks(lambda: None)
    assert _net_blocks(lambda: obs.gauge("g", 1.0)) <= baseline
    assert _net_blocks(lambda: obs.annotate("k", "v")) <= baseline


def test_disabled_trace_returns_shared_singleton():
    assert not obs.enabled()
    spans = {obs.trace("a") for _ in range(32)}
    assert len(spans) == 1


def test_enabled_incr_actually_records():
    # Sanity counterpart: the same call is not a no-op once collecting.
    with obs.collecting() as col:
        for _ in range(5):
            obs.incr("hot.loop")
    assert col.counters == {"hot.loop": 5}
