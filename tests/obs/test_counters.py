"""Counter correctness, including under concurrent increments."""

import threading

from repro import obs
from repro.obs import Collector


class TestCounters:
    def test_incr_creates_and_accumulates(self):
        col = Collector()
        col.incr("hits")
        col.incr("hits", 4)
        col.incr("misses", 0)
        assert col.counters == {"hits": 5, "misses": 0}

    def test_negative_amounts_allowed(self):
        col = Collector()
        col.incr("delta", 3)
        col.incr("delta", -1)
        assert col.counters == {"delta": 2}

    def test_counters_property_returns_a_copy(self):
        col = Collector()
        col.incr("x")
        snap = col.counters
        snap["x"] = 999
        assert col.counters == {"x": 1}

    def test_threaded_increments_lose_nothing(self):
        col = Collector()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                col.incr("shared")
                col.incr("shared.big", 3)

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert col.counters["shared"] == threads * per_thread
        assert col.counters["shared.big"] == 3 * threads * per_thread

    def test_threaded_spans_keep_independent_stacks(self):
        col = Collector()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with col.span(f"outer-{i}"):
                with col.span(f"inner-{i}"):
                    pass

        ts = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        spans = {s["name"]: s for s in col.spans}
        assert len(spans) == 8
        for i in range(4):
            assert spans[f"inner-{i}"]["parent"] == f"outer-{i}"
            assert spans[f"inner-{i}"]["depth"] == 1
            assert spans[f"outer-{i}"]["depth"] == 0

    def test_module_incr_through_collecting(self):
        with obs.collecting() as col:
            for _ in range(10):
                obs.incr("loop.iterations")
        assert col.counters == {"loop.iterations": 10}
