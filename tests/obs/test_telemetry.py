"""Shard files, trace-context propagation, and the timeline merger."""

import itertools
import json

import pytest

from repro.obs import (
    TELEMETRY_KIND,
    TELEMETRY_VERSION,
    TIMELINE_KIND,
    ShardCollector,
    TraceContext,
    critical_path,
    load_timeline,
    merge_shards,
    new_run_id,
    read_shard,
    validate_timeline,
    write_timeline,
)


def _fake_clock(start=100.0, step=1.0):
    """Deterministic clock: ``start``, ``start + step``, ... per call."""
    counter = itertools.count()
    return lambda: start + step * next(counter)


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext("run-1", 7)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_none_parent_roundtrip(self):
        ctx = TraceContext("run-1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert ctx.parent_span_id is None

    @pytest.mark.parametrize("wire", [
        None, "run-1", {}, {"run_id": 3}, {"run_id": "r", "parent_span_id": "x"},
    ])
    def test_malformed_wire_reads_as_none(self, wire):
        assert TraceContext.from_wire(wire) is None

    def test_new_run_id_is_unique(self):
        assert new_run_id() != new_run_id()


class TestShardFile:
    def test_flush_roundtrip(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        col = ShardCollector(
            path, context=TraceContext("run-1", 4), worker="w0",
            clock=_fake_clock(),
        )
        with col.span("dist.claim", {"shard": 2}):
            col.incr("cuts", 10)
            col.gauge("progress", 0.5)
            col.event("claim", shard=2)
        col.flush()

        shard = read_shard(path)
        assert shard is not None
        header = shard["header"]
        assert header["kind"] == TELEMETRY_KIND
        assert header["version"] == TELEMETRY_VERSION
        assert header["run_id"] == "run-1"
        assert header["parent_span_id"] == 4
        assert header["worker"] == "w0"
        (span,) = shard["spans"]
        assert span["name"] == "dist.claim"
        assert span["attrs"] == {"shard": 2}
        assert shard["counters"] == {"cuts": 10}
        assert shard["gauges"]["progress"]["value"] == pytest.approx(0.5)
        (event,) = shard["events"]
        assert event["name"] == "claim"
        assert event["attrs"] == {"shard": 2}
        assert shard["open_spans"] == []
        assert shard["torn_lines"] == 0

    def test_open_span_leaves_durable_marker(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        col = ShardCollector(path, worker="w0", clock=_fake_clock())
        span = col.span("dist.claim", {"shard": 1})
        span.__enter__()
        col.flush()  # worker is about to be SIGKILLed: no __exit__ ever runs
        shard = read_shard(path)
        (marker,) = shard["open_spans"]
        assert marker["name"] == "dist.claim"
        assert shard["spans"] == []

    def test_flush_is_a_full_rewrite(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        col = ShardCollector(path, worker="w0", clock=_fake_clock())
        col.incr("c", 1)
        col.flush()
        col.incr("c", 2)
        col.flush()
        # Cumulative totals, not an append journal: one counter line.
        assert read_shard(path)["counters"] == {"c": 3}
        lines = path.read_text().splitlines()
        assert sum('"counter"' in ln for ln in lines) == 1

    def test_torn_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "w0.jsonl"
        col = ShardCollector(path, worker="w0", clock=_fake_clock())
        col.incr("c", 5)
        col.flush()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "counter", "name": "torn", "val\n')
        shard = read_shard(path)
        assert shard["counters"] == {"c": 5}
        assert shard["torn_lines"] == 1

    def test_alien_file_reads_as_no_shard(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        assert read_shard(path) is None
        assert read_shard(tmp_path / "absent.jsonl") is None


def _make_fleet(tmp_path, *, kill_w1=False):
    """A parent shard + two worker shards of one run; returns the paths.

    Fake clocks put the parent at t0=100, w0 at 110, w1 at 120, so merged
    timestamps exercise the cross-shard normalization. When ``kill_w1``,
    w1's claim span is left open at flush — the SIGKILL shape.
    """
    parent = ShardCollector(
        tmp_path / "parent.jsonl", context=TraceContext("run-1"),
        worker="parent", clock=_fake_clock(100.0),
    )
    root = parent.span("dist.run", {"shards": 2})
    root.__enter__()
    parent.flush()
    ctx = TraceContext("run-1", root.id)

    w0 = ShardCollector(
        tmp_path / "w0.jsonl", context=ctx, worker="w0",
        clock=_fake_clock(110.0),
    )
    with w0.span("dist.claim", {"shard": 0}):
        w0.incr("cuts", 100)
        w0.gauge("dist.progress", 0.4)
    w0.flush()

    w1 = ShardCollector(
        tmp_path / "w1.jsonl", context=ctx, worker="w1",
        clock=_fake_clock(120.0),
    )
    claim = w1.span("dist.claim", {"shard": 1})
    claim.__enter__()
    w1.incr("cuts", 50)
    w1.gauge("dist.progress", 0.9)
    if not kill_w1:
        claim.__exit__(None, None, None)
    w1.flush()

    root.__exit__(None, None, None)
    parent.flush()
    return sorted(tmp_path.glob("*.jsonl"))


class TestMerge:
    def test_counters_sum_across_shards(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path))
        assert doc["counters"] == {"cuts": 150}

    def test_gauges_last_write_by_absolute_time(self, tmp_path):
        # w1 starts later (t0=120) so its write is the later absolute one.
        doc = merge_shards(_make_fleet(tmp_path))
        assert doc["gauges"] == {"dist.progress": 0.9}

    def test_worker_roots_reparent_under_parent_span(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path))
        by_id = {s["id"]: s for s in doc["spans"]}
        (root_id,) = [s["id"] for s in doc["spans"] if s["name"] == "dist.run"]
        assert root_id.startswith("parent/")
        for worker in ("w0", "w1"):
            (claim,) = [s for s in doc["spans"]
                        if s["worker"] == worker and s["name"] == "dist.claim"]
            assert claim["parent_id"] == root_id
            assert by_id[claim["parent_id"]]["worker"] == "parent"

    def test_killed_worker_span_is_truncated_to_last_flush(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path, kill_w1=True))
        (trunc,) = [s for s in doc["spans"] if s["truncated"]]
        assert trunc["worker"] == "w1"
        assert trunc["name"] == "dist.claim"
        # Duration runs from the span's start to the shard's last flush.
        assert trunc["duration"] > 0

    def test_merge_is_deterministic_in_the_shard_set(self, tmp_path):
        paths = _make_fleet(tmp_path, kill_w1=True)
        forward = json.dumps(merge_shards(paths), sort_keys=True)
        backward = json.dumps(merge_shards(reversed(paths)), sort_keys=True)
        assert forward == backward

    def test_run_id_filter_skips_foreign_shards(self, tmp_path):
        paths = _make_fleet(tmp_path)
        alien = ShardCollector(
            tmp_path / "alien.jsonl", context=TraceContext("other-run"),
            worker="alien", clock=_fake_clock(),
        )
        alien.incr("cuts", 999)
        alien.flush()
        doc = merge_shards(sorted(tmp_path.glob("*.jsonl")), run_id="run-1")
        assert doc["counters"] == {"cuts": 150}
        assert doc["skipped_shards"] == ["alien.jsonl"]
        assert doc["run_id"] == "run-1"
        assert set(doc["workers"]) == {"parent", "w0", "w1"}

    def test_unreadable_shard_skipped_not_fatal(self, tmp_path):
        paths = _make_fleet(tmp_path)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        doc = merge_shards(paths + [bad])
        assert "bad.jsonl" in doc["skipped_shards"]
        assert doc["counters"] == {"cuts": 150}

    def test_merged_timeline_validates(self, tmp_path):
        for kill in (False, True):
            doc = merge_shards(_make_fleet(tmp_path, kill_w1=kill))
            assert validate_timeline(doc) == []


class TestCriticalPath:
    def test_names_the_straggler_chain(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path, kill_w1=True))
        cp = doc["critical_path"]
        assert cp["names"][0] == "dist.run"
        # w1 never finished: its truncated claim runs to its last flush,
        # making it the last-ending child — the straggler.
        assert cp["workers"][-1] == "w1"
        assert cp["truncated"] is True
        for sid in cp["span_ids"]:
            assert any(s["id"] == sid for s in doc["spans"])

    def test_empty_and_tie_break(self):
        assert critical_path([]) == {
            "span_ids": [], "names": [], "workers": [],
            "duration": 0.0, "truncated": False,
        }
        tie = [
            {"id": "a/1", "parent_id": None, "name": "a", "worker": "a",
             "start": 0.0, "duration": 5.0, "truncated": False},
            {"id": "b/1", "parent_id": None, "name": "b", "worker": "b",
             "start": 0.0, "duration": 5.0, "truncated": False},
        ]
        assert critical_path(tie)["span_ids"] == ["b/1"]


class TestTimelineFile:
    def test_write_load_roundtrip(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path))
        path = write_timeline(tmp_path / "timeline.json", doc)
        loaded = load_timeline(path)
        assert loaded["kind"] == TIMELINE_KIND
        assert validate_timeline(loaded) == []
        assert loaded["counters"] == doc["counters"]

    def test_load_rejects_torn_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "repro-telemetry-timel')
        with pytest.raises(ValueError):
            load_timeline(path)
        with pytest.raises(ValueError):
            load_timeline(tmp_path / "absent.json")

    def test_validator_rejects_structural_damage(self, tmp_path):
        doc = merge_shards(_make_fleet(tmp_path))
        assert validate_timeline(doc) == []

        bad = json.loads(json.dumps(doc))
        bad["spans"][0]["duration"] = -1.0
        assert any("negative" in p for p in validate_timeline(bad))

        bad = json.loads(json.dumps(doc))
        bad["spans"][1]["id"] = bad["spans"][0]["id"]
        assert any("duplicated" in p for p in validate_timeline(bad))

        bad = json.loads(json.dumps(doc))
        bad["spans"][1]["parent_id"] = "nobody/99"
        assert any("does not resolve" in p for p in validate_timeline(bad))

        bad = json.loads(json.dumps(doc))
        bad["counters"]["cuts"] = "150"
        assert any("not an integer" in p for p in validate_timeline(bad))

        bad = json.loads(json.dumps(doc))
        bad["critical_path"]["span_ids"] = ["ghost/1"]
        assert any("unknown span" in p for p in validate_timeline(bad))

        assert validate_timeline([]) == ["timeline is not an object"]
        assert any("kind" in p for p in validate_timeline({"kind": "x"}))
