"""Distributed sweep: bit-identity, chaos, resume, degraded certification.

The acceptance invariant of the whole layer lives here: a fleet of
workers — with seeded SIGKILLs mid-sweep — terminates with a profile
bit-identical to the uninterrupted serial sweep, and anything less than
a full sweep still merges into a certified upper bound.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core.fallback import solve_with_fallback
from repro.cuts.enumerate_exact import cut_profile, enumeration_shards
from repro.dist import (
    ShardCoordinator,
    dist_key,
    distributed_cut_profile,
    merge_to_profile,
)
from repro.resilience import Budget, CrashSchedule
from repro.topology.random_regular import random_regular_graph


def _no_leaked_children(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestBitIdentity:
    def test_matches_serial_sweep_exactly(self, b4, tmp_path):
        serial = cut_profile(b4)
        dist = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=6, workers=3,
            lease_seconds=5.0,
        )
        assert dist.complete
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)
        assert _no_leaked_children()

    def test_counted_subset(self, b4, tmp_path):
        counted = np.arange(0, b4.num_nodes, 2, dtype=np.int64)
        serial = cut_profile(b4, counted=counted)
        dist = distributed_cut_profile(
            b4, counted, state_dir=str(tmp_path / "st"), shards=4, workers=2,
        )
        assert dist.complete
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)

    def test_single_shard_degenerates_to_serial(self, b4, tmp_path):
        serial = cut_profile(b4)
        dist = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=1, workers=1,
        )
        assert dist.complete
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)

    def test_node_limit_enforced(self, tmp_path):
        big = random_regular_graph(30, 3, seed=0)
        with pytest.raises(ValueError, match="limited to"):
            distributed_cut_profile(big, state_dir=str(tmp_path / "st"))


class TestChaos:
    @pytest.mark.parametrize("seed", [11, 42])
    def test_two_killed_workers_still_bit_identical(self, tmp_path, seed):
        """The headline invariant: 2 of 4 workers SIGKILLed mid-sweep,
        their leases stolen back, final profile equals the serial one."""
        net = random_regular_graph(14, 3, seed=7)
        serial = cut_profile(net)
        sched = CrashSchedule.seeded(
            tmp_path / "chaos", seed, workers=4, kills=2
        )
        status = {}
        dist = distributed_cut_profile(
            net, state_dir=str(tmp_path / "st"), shards=8, workers=4,
            schedule=sched, lease_seconds=1.0, batch_bits=10, status=status,
        )
        assert status["workers_killed"] == 2
        assert sched.pending() == []  # every planned kill actually fired
        assert status["events"]["reclaims"] >= 2
        assert dist.complete
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)
        assert _no_leaked_children()

    def test_whole_fleet_dead_parent_takes_over(self, b4, tmp_path):
        serial = cut_profile(b4)
        sched = CrashSchedule.seeded(
            tmp_path / "chaos", 0, workers=2, kills=2
        )
        status = {}
        dist = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=4, workers=2,
            schedule=sched, lease_seconds=0.5, status=status,
        )
        assert status["workers_killed"] == 2
        assert dist.complete
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)
        assert _no_leaked_children()


class TestResumeAndPartial:
    def test_resume_skips_done_shards_and_stays_identical(self, b4, tmp_path):
        serial = cut_profile(b4)
        state = str(tmp_path / "st")
        # Pre-complete two shards by hand (an interrupted earlier run).
        counted = np.arange(b4.num_nodes, dtype=np.int64)
        key = dist_key(b4, counted, 6)
        coord = ShardCoordinator(state, key)
        coord.ensure(enumeration_shards(b4, 6))
        from repro.cuts.enumerate_exact import shard_minima
        from repro.dist.worker import shard_payload

        for _ in range(2):
            lease = coord.claim("earlier-run")
            best, mask = shard_minima(b4.edges, counted, lease.lo, lease.hi)
            coord.complete("earlier-run", lease.shard, shard_payload(best, mask))

        status = {}
        dist = distributed_cut_profile(
            b4, state_dir=state, shards=6, workers=2, status=status,
        )
        assert dist.complete
        # The resumed run only computed the remaining four shards.
        assert status["events"]["completions"] == 6
        assert np.array_equal(serial.values, dist.values)
        assert np.array_equal(serial.witnesses, dist.witnesses)

    def test_expired_budget_returns_certified_partial(self, b4, tmp_path):
        status = {}
        dist = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=4, workers=2,
            budget=Budget(0.0), status=status,
        )
        assert not dist.complete
        assert not status["complete"]
        # Nothing ran; every entry is the int64 sentinel (vacuous bound).
        assert _no_leaked_children()

    def test_partial_union_is_an_upper_bound(self, b4, tmp_path):
        """Merge-is-an-upper-bound: shards completed by a run that never
        finished still certify, entry by entry, against the serial truth."""
        serial = cut_profile(b4)
        counted = np.arange(b4.num_nodes, dtype=np.int64)
        key = dist_key(b4, counted, 6)
        coord = ShardCoordinator(str(tmp_path / "st"), key)
        coord.ensure(enumeration_shards(b4, 6))
        from repro.cuts.enumerate_exact import shard_minima
        from repro.dist.worker import shard_payload

        for _ in range(3):  # half the sweep, then the "run" dies
            lease = coord.claim("doomed-run")
            best, mask = shard_minima(b4.edges, counted, lease.lo, lease.hi)
            coord.complete("doomed-run", lease.shard, shard_payload(best, mask))

        prof = merge_to_profile(b4, counted, coord.completed_payloads())
        assert not prof.complete
        finite = prof.values < np.iinfo(np.int64).max
        assert finite.any()
        assert (prof.values[finite] >= serial.values[finite]).all()
        # Every finite entry's witness recounts to its claimed capacity.
        for c in np.flatnonzero(finite):
            assert prof.witness_cut(int(c)).capacity == prof.values[c]


class TestFallbackTier:
    def test_distributed_tier_matches_serial_cascade(self, b4):
        serial = solve_with_fallback(b4)
        dist = solve_with_fallback(b4, shards=4, dist_workers=2)
        assert (dist.lower, dist.upper) == (serial.lower, serial.upper)
        assert dist.upper_evidence.startswith("tier-1 distributed enumeration")
        assert "shard history" in dist.upper_evidence
        assert dist.verify(b4).ok

    def test_chaos_inside_the_cascade_still_exact(self, b4, tmp_path):
        sched = CrashSchedule.seeded(tmp_path / "chaos", 5, workers=2, kills=1)
        serial = solve_with_fallback(b4)
        # The cascade API has no schedule hook (chaos is a dist concern);
        # drive the dist tier directly with the same state dir instead.
        status = {}
        prof = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=4, workers=2,
            schedule=sched, lease_seconds=0.5, status=status,
        )
        assert status["workers_killed"] == 1
        n = b4.num_nodes
        bw = int(min(prof.values[n // 2], prof.values[(n + 1) // 2]))
        assert bw == serial.upper == serial.lower
