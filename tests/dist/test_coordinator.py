"""The lease protocol, deterministically: injected clock, single process."""

import json

from repro.dist import Lease, ShardCoordinator


class _Clock:
    """Manually advanced monotonic clock."""

    def __init__(self, t=0.0):
        self.t = float(t)

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


def _coord(tmp_path, clock, **kw):
    kw.setdefault("lease_seconds", 10.0)
    kw.setdefault("max_attempts", 2)
    kw.setdefault("backoff", 1.0)
    kw.setdefault("backoff_factor", 2.0)
    kw.setdefault("max_backoff", 8.0)
    return ShardCoordinator(tmp_path / "st", "k1", clock=clock, **kw)


RANGES = [(0, 4), (4, 8), (8, 12)]


class TestEnsure:
    def test_creates_pending_shards(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        s = coord.ensure(RANGES)
        assert s["shards"] == 3
        assert s["counts"] == {
            "pending": 3, "leased": 0, "done": 0, "quarantined": 0,
        }
        assert not s["settled"]

    def test_same_key_adopts_existing_state(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock)
        coord.ensure(RANGES)
        lease = coord.claim("w0")
        coord.complete("w0", lease.shard, {"best": [1]})
        # A second ensure (a resumed run) must not reset the done shard.
        s = coord.ensure(RANGES)
        assert s["counts"]["done"] == 1

    def test_stale_key_state_is_replaced(self, tmp_path):
        clock = _Clock()
        old = ShardCoordinator(tmp_path / "st", "old-key", clock=clock)
        old.ensure(RANGES)
        lease = old.claim("w0")
        old.complete("w0", lease.shard, {"best": [9]})
        # Same directory, different computation: the old completions
        # describe someone else's mask space and must not be resumed.
        new = ShardCoordinator(tmp_path / "st", "new-key", clock=clock)
        s = new.ensure([(0, 2)])
        assert s["key"] == "new-key"
        assert s["shards"] == 1
        assert s["counts"]["done"] == 0

    def test_torn_state_file_is_replaced(self, tmp_path):
        (tmp_path / "st").mkdir()
        (tmp_path / "st" / "state.json").write_text("{ torn mid-wri")
        coord = _coord(tmp_path, _Clock())
        s = coord.ensure(RANGES)
        assert s["shards"] == 3

    def test_meta_round_trips(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES, meta={"family": "bn", "n": 8})
        assert coord.summary()["meta"] == {"family": "bn", "n": 8}


class TestClaim:
    def test_claims_are_exclusive_and_in_order(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        a = coord.claim("w0")
        b = coord.claim("w1")
        c = coord.claim("w2")
        assert isinstance(a, Lease)
        assert [(l.lo, l.hi) for l in (a, b, c)] == RANGES
        assert {l.worker for l in (a, b, c)} == {"w0", "w1", "w2"}
        assert coord.claim("w3") is None  # everything leased, none expired

    def test_expired_lease_is_reclaimed_with_attempt_count(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock)
        coord.ensure([(0, 4)])
        lost = coord.claim("dead-worker")
        clock.advance(10.0)  # the lease dies at exactly lease_seconds
        # The first claim observes the expiry and starts the backoff; a
        # claim after the backoff actually steals the shard.
        assert coord.claim("thief") is None
        clock.advance(1.0)
        stolen = coord.claim("thief")
        assert stolen.shard == lost.shard
        assert stolen.worker == "thief"
        ev = coord.summary()["events"]
        assert ev["expired"] == 1 and ev["reclaims"] == 1

    def test_backoff_delays_reissue(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0)
        coord.ensure([(0, 4)])
        coord.claim("w0")
        clock.advance(1.0)
        # Lease expired, but the reclaimed shard sits in backoff (1s):
        # a claim right now gets nothing, one after the backoff succeeds.
        assert coord.claim("w1") is None
        clock.advance(1.0)
        assert coord.claim("w1") is not None

    def test_backoff_grows_exponentially_and_caps(self, tmp_path):
        clock = _Clock()
        coord = _coord(
            tmp_path, clock, lease_seconds=1.0, max_attempts=10,
            backoff=1.0, backoff_factor=2.0, max_backoff=3.0,
        )
        coord.ensure([(0, 4)])
        observed = []
        for _ in range(4):
            lease = None
            waited = 0.0
            coord.claim("w")
            clock.advance(1.0)  # expire the lease
            while lease is None:
                lease = coord.claim("w")
                if lease is None:
                    clock.advance(0.5)
                    waited += 0.5
            observed.append(waited)
        # 1.0, 2.0 then capped at 3.0 (claim polls on a 0.5 grid).
        assert observed == [1.0, 2.0, 3.0, 3.0]

    def test_quarantine_after_attempt_cap(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0, max_attempts=1)
        coord.ensure([(0, 4)])
        coord.claim("doomed")                    # expires at t=1
        clock.advance(2.0)
        assert coord.claim("doomed") is None     # expiry #1, backoff to t=3
        clock.advance(1.0)
        assert coord.claim("doomed") is not None  # reissued, expires t=4
        clock.advance(2.0)
        assert coord.claim("w") is None          # expiry #2 > cap: quarantine
        s = coord.summary()
        assert s["counts"]["quarantined"] == 1
        assert s["events"]["quarantined"] == 1
        assert not s["settled"]
        assert coord.unfinished() == 1

    def test_include_quarantined_override(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0, max_attempts=0)
        coord.ensure([(0, 4)])
        coord.claim("doomed")
        clock.advance(1.0)
        assert coord.claim("w") is None  # quarantined immediately
        rescue = coord.claim("parent", include_quarantined=True)
        assert rescue is not None
        # Completing it lifts the quarantine: the sweep can settle.
        assert coord.complete("parent", rescue.shard, {"best": [1]})
        assert coord.summary()["counts"]["done"] == 1


class TestHeartbeatAndComplete:
    def test_heartbeat_extends_the_lease(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=2.0)
        coord.ensure([(0, 4)])
        lease = coord.claim("w0")
        for _ in range(5):
            clock.advance(1.5)
            assert coord.heartbeat("w0", lease.shard)
        # 7.5s elapsed, far past the 2s lease, but never between beats.
        assert coord.claim("thief") is None

    def test_heartbeat_reports_a_lost_lease(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0)
        coord.ensure([(0, 4)])
        lease = coord.claim("w0")
        clock.advance(2.0)
        coord.claim("thief")  # reclaim w0's expired lease
        assert not coord.heartbeat("w0", lease.shard)

    def test_complete_marks_done_and_stores_payload(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        lease = coord.claim("w0")
        assert coord.complete("w0", lease.shard, {"best": [3, 1]})
        assert coord.completed_payloads() == [(0, 4, {"best": [3, 1]})]

    def test_straggler_completion_is_accepted(self, tmp_path):
        # A worker whose lease was stolen mid-compute still delivers a
        # correct (deterministic) payload; accepting it finishes sooner.
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0)
        coord.ensure([(0, 4)])
        coord.claim("straggler")
        clock.advance(2.0)
        coord.claim("thief")
        assert coord.complete("straggler", 0, {"best": [1]})
        ev = coord.summary()["events"]
        assert ev["stale_completions"] == 1  # counted, but accepted
        assert coord.summary()["counts"]["done"] == 1

    def test_double_completion_of_done_shard_is_dropped(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock, lease_seconds=1.0)
        coord.ensure([(0, 4)])
        coord.claim("a")
        assert coord.complete("a", 0, {"best": [1]})
        assert not coord.complete("b", 0, {"best": [2]})
        assert coord.completed_payloads()[0][2] == {"best": [1]}

    def test_abandon_reissues_without_penalty(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure([(0, 4)])
        lease = coord.claim("w0")
        coord.abandon("w0", lease.shard)
        again = coord.claim("w1")
        assert again is not None and again.shard == lease.shard
        assert coord.summary()["events"]["expired"] == 0

    def test_settled_when_all_done(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        assert not coord.settled()
        while (lease := coord.claim("w")) is not None:
            coord.complete("w", lease.shard, {"best": []})
        assert coord.settled()
        assert coord.unfinished() == 0

    def test_payloads_sorted_by_lo(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        leases = [coord.claim("w") for _ in RANGES]
        for lease in reversed(leases):  # complete out of order
            coord.complete("w", lease.shard, {"lo": lease.lo})
        assert [lo for lo, _, _ in coord.completed_payloads()] == [0, 4, 8]


class TestDurability:
    def test_state_survives_coordinator_restart(self, tmp_path):
        clock = _Clock()
        coord = _coord(tmp_path, clock)
        coord.ensure(RANGES)
        lease = coord.claim("w0")
        coord.complete("w0", lease.shard, {"best": [2]})
        # A brand-new coordinator object (a restarted process) sees it.
        again = _coord(tmp_path, clock)
        s = again.ensure(RANGES)
        assert s["counts"]["done"] == 1
        assert again.completed_payloads() == [(0, 4, {"best": [2]})]

    def test_write_leaves_no_temp_file(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        coord.claim("w0")
        names = {p.name for p in (tmp_path / "st").iterdir()}
        assert names == {"state.json", "lock"}

    def test_done_ledger_coalesces_ranges(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        for _ in RANGES:
            lease = coord.claim("w")
            coord.complete("w", lease.shard, {})
        s = coord.summary()
        assert s["done_ledger"] == [[0, 12]]
        assert s["covered"] == 12

    def test_peek_without_key(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        coord.claim("w0")
        peeked = ShardCoordinator.peek(tmp_path / "st")
        assert peeked["key"] == "k1"
        assert peeked["counts"]["leased"] == 1
        assert len(peeked["shard_rows"]) == 3

    def test_peek_missing_or_torn_is_none(self, tmp_path):
        assert ShardCoordinator.peek(tmp_path / "nowhere") is None
        (tmp_path / "st").mkdir()
        (tmp_path / "st" / "state.json").write_text("nope")
        assert ShardCoordinator.peek(tmp_path / "st") is None

    def test_state_file_is_valid_sorted_json(self, tmp_path):
        coord = _coord(tmp_path, _Clock())
        coord.ensure(RANGES)
        data = json.loads((tmp_path / "st" / "state.json").read_text())
        assert data["key"] == "k1"
        assert [s["id"] for s in data["shards"]] == [0, 1, 2]
