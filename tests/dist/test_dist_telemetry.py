"""Fleet telemetry under chaos: the ISSUE's acceptance scenario.

A seeded 4-worker distributed run with one SIGKILLed worker must still
produce a single merged timeline that validates against the schema, whose
fleet counter totals equal the serial sweep on the completed-shard union,
and whose critical path names the straggler.  Telemetry is strictly an
observer: the profile stays bit-identical to serial with it enabled.
"""

import json
import multiprocessing
import time

import numpy as np
import pytest

from repro.cuts.enumerate_exact import cut_profile
from repro.dist import distributed_cut_profile
from repro.obs import load_timeline, merge_shards, validate_timeline
from repro.resilience import CrashSchedule
from repro.topology.random_regular import random_regular_graph


def _no_leaked_children(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestChaosTelemetry:
    def _run(self, tmp_path, *, kills=1):
        net = random_regular_graph(14, 3, seed=7)
        sched = CrashSchedule.seeded(
            tmp_path / "chaos", 11, workers=4, kills=kills
        )
        status = {}
        tele_dir = tmp_path / "tele"
        dist = distributed_cut_profile(
            net, state_dir=str(tmp_path / "st"), shards=8, workers=4,
            schedule=sched, lease_seconds=1.0, batch_bits=10,
            status=status, telemetry=str(tele_dir),
        )
        return net, sched, status, tele_dir, dist

    def test_sigkilled_fleet_yields_one_valid_timeline(self, tmp_path):
        net, sched, status, tele_dir, dist = self._run(tmp_path)
        assert status["workers_killed"] == 1
        assert sched.pending() == []
        assert dist.complete
        assert np.array_equal(cut_profile(net).values, dist.values)

        info = status["telemetry"]
        timeline = load_timeline(info["timeline"])
        assert validate_timeline(timeline) == []

        # Counter equality: each enumeration range is credited exactly
        # once (on accepted completion), so the fleet total equals the
        # serial sweep's subset count, 2^(n-1).
        assert (
            timeline["counters"]["cuts.enumerate.cuts_evaluated"]
            == 1 << (net.num_nodes - 1)
        )

        # The SIGKILL left exactly the killed worker's claim truncated,
        # and the whole fleet hangs off the one parent dist.run root.
        truncated = [s for s in timeline["spans"] if s["truncated"]]
        assert len(truncated) == 1
        assert truncated[0]["name"] == "dist.claim"
        roots = [s for s in timeline["spans"] if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["dist.run"]
        assert roots[0]["worker"] == "parent"

        # Critical path starts at the root and stays inside the tree.
        cp = timeline["critical_path"]
        assert cp["names"][0] == "dist.run"
        ids = {s["id"] for s in timeline["spans"]}
        assert set(cp["span_ids"]) <= ids
        assert _no_leaked_children()

    def test_merge_is_deterministic_and_counters_survive_kill(self, tmp_path):
        _, _, status, tele_dir, dist = self._run(tmp_path)
        info = status["telemetry"]
        shard_files = [tele_dir / f for f in info["shard_files"]]
        assert (tele_dir / "parent.jsonl") in shard_files

        forward = merge_shards(shard_files, run_id=info["run_id"])
        backward = merge_shards(reversed(shard_files), run_id=info["run_id"])
        assert json.dumps(forward, sort_keys=True) == json.dumps(
            backward, sort_keys=True
        )
        # The killed worker's flushed counters still reach the merge: the
        # fleet claim count covers at least the 8 shard completions.
        assert forward["counters"]["dist.worker.completions"] >= 8

    def test_telemetry_disabled_leaves_no_artifacts(self, b4, tmp_path):
        status = {}
        dist = distributed_cut_profile(
            b4, state_dir=str(tmp_path / "st"), shards=4, workers=2,
            status=status,
        )
        assert dist.complete
        assert "telemetry" not in status
        assert not list(tmp_path.glob("**/*.jsonl"))
        assert _no_leaked_children()


class TestCoordinatorProgress:
    def test_heartbeat_progress_lifecycle(self, b4, tmp_path):
        from repro.cuts.enumerate_exact import enumeration_shards, shard_minima
        from repro.dist import ShardCoordinator, dist_key
        from repro.dist.worker import shard_payload

        counted = np.arange(b4.num_nodes, dtype=np.int64)
        key = dist_key(b4, counted, 4)
        coord = ShardCoordinator(str(tmp_path / "st"), key)
        coord.ensure(enumeration_shards(b4, 4))

        def _row(shard):
            (row,) = [r for r in coord.shard_table() if r["id"] == shard]
            return row

        lease = coord.claim("w0")
        assert _row(lease.shard)["progress"] is None

        coord.heartbeat("w0", lease.shard, progress=0.5)
        assert _row(lease.shard)["progress"] == pytest.approx(0.5)

        # Out-of-range values clamp rather than corrupt the state file.
        coord.heartbeat("w0", lease.shard, progress=7.0)
        assert _row(lease.shard)["progress"] == pytest.approx(1.0)

        best, mask = shard_minima(b4.edges, counted, lease.lo, lease.hi)
        coord.complete("w0", lease.shard, shard_payload(best, mask))
        assert _row(lease.shard)["progress"] == pytest.approx(1.0)

    def test_abandon_resets_progress(self, b4, tmp_path):
        from repro.cuts.enumerate_exact import enumeration_shards
        from repro.dist import ShardCoordinator, dist_key

        counted = np.arange(b4.num_nodes, dtype=np.int64)
        coord = ShardCoordinator(
            str(tmp_path / "st"), dist_key(b4, counted, 4)
        )
        coord.ensure(enumeration_shards(b4, 4))
        lease = coord.claim("w0")
        coord.heartbeat("w0", lease.shard, progress=0.25)
        coord.abandon("w0", lease.shard)
        (row,) = [r for r in coord.shard_table() if r["id"] == lease.shard]
        assert row["progress"] is None
