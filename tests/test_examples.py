"""The example scripts must keep running end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    out = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip(), "examples must narrate what they demonstrate"


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the deliverable is at least three runnable examples"
