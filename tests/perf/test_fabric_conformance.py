"""Cross-solver conformance on the product and data-center families.

The same contract as ``tests/cuts/test_solver_conformance.py``, extended
to every new family of this repo's product-network layer: on each
``<= 16``-node torus, mesh, fat-tree and flattened-butterfly instance,
exhaustive enumeration, the layered min-plus DP (where the family is
layered) and branch and bound must agree on the bisection width and hand
back mutually valid witnesses — cached and uncached, so a symmetry-
transported cache hit can never change an answer.  Where the
Arjona-Aroca closed form applies, the shared width must equal it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.claims import (
    arjona_mesh_width,
    arjona_torus_width,
    fat_tree_width,
    flattened_butterfly_width,
)
from repro.core.fallback import solve_with_fallback
from repro.cuts import (
    Cut,
    bb_min_bisection,
    cut_profile,
    layered_cut_profile,
)
from repro.obs import collecting
from repro.perf import SolverCache, cached_cut_profile
from repro.topology import FatTree, FlattenedButterfly, Mesh, Torus
from repro.topology import fat_tree, flattened_butterfly, mesh, torus

#: Every new-family instance with <= 16 nodes.
INSTANCES = [
    pytest.param(lambda: torus(3), id="Torus3-3n"),
    pytest.param(lambda: torus(3, 3), id="Torus3x3-9n"),
    pytest.param(lambda: torus(4, 3), id="Torus4x3-12n"),
    pytest.param(lambda: torus(4, 4), id="Torus4x4-16n"),
    pytest.param(lambda: mesh(2, 2), id="Mesh2x2-4n"),
    pytest.param(lambda: mesh(3, 2), id="Mesh3x2-6n"),
    pytest.param(lambda: mesh(2, 2, 2), id="Mesh2x2x2-8n"),
    pytest.param(lambda: mesh(4, 2), id="Mesh4x2-8n"),
    pytest.param(lambda: mesh(3, 3), id="Mesh3x3-9n"),
    pytest.param(lambda: fat_tree(1), id="FT1-3n"),
    pytest.param(lambda: fat_tree(2), id="FT2-7n"),
    pytest.param(lambda: fat_tree(3), id="FT3-15n"),
    pytest.param(lambda: flattened_butterfly(2, 2), id="FBfly2d2-4n"),
    pytest.param(lambda: flattened_butterfly(2, 3), id="FBfly2d3-8n"),
    pytest.param(lambda: flattened_butterfly(3, 2), id="FBfly3d2-9n"),
    pytest.param(lambda: flattened_butterfly(4, 2), id="FBfly4d2-16n"),
]

_DP_WIDTH_LIMIT = 12


@pytest.fixture(params=INSTANCES)
def instance(request):
    net = request.param()
    assert net.num_nodes <= 16
    return net


def _dp_applies(net) -> bool:
    layers = net.layers() if hasattr(net, "layers") else None
    return layers is not None and max(len(l) for l in layers) <= _DP_WIDTH_LIMIT


def _witnesses(net):
    """One optimal bisection per applicable exact solver."""
    prof = cut_profile(net)
    n = net.num_nodes
    c = n // 2 if prof.values[n // 2] <= prof.values[(n + 1) // 2] else (n + 1) // 2
    out = {
        "enumerate": prof.witness_cut(c),
        "branch_and_bound": bb_min_bisection(net),
    }
    if _dp_applies(net):
        out["layered_dp"] = layered_cut_profile(net).min_bisection()
    return out


def _closed_form(net) -> int | None:
    if isinstance(net, Torus) and net.is_square:
        return arjona_torus_width(net.sides[0], net.dims)
    if isinstance(net, Mesh) and net.is_square:
        return arjona_mesh_width(net.sides[0], net.dims)
    if isinstance(net, FatTree):
        return fat_tree_width(net.depth)
    if isinstance(net, FlattenedButterfly) and net.ary % 2 == 0:
        return flattened_butterfly_width(net.ary, net.dims)
    return None


class TestAgreement:
    def test_solvers_agree_on_one_width(self, instance):
        width = cut_profile(instance).bisection_width()
        assert bb_min_bisection(instance).capacity == width
        if _dp_applies(instance):
            assert layered_cut_profile(instance).min_bisection().capacity == width

    def test_witnesses_are_mutually_valid(self, instance):
        width = cut_profile(instance).bisection_width()
        for solver, cut in _witnesses(instance).items():
            assert cut.is_bisection(), f"{solver} witness is not a bisection"
            assert cut.capacity == width, f"{solver} witness capacity drifts"
            # Re-derive the capacity from the raw side array so the check
            # does not trust the Cut object the solver handed back.
            assert instance.cut_capacity(cut.side) == width

    def test_width_matches_the_claim_table(self, instance):
        """Where the Arjona-Aroca closed form applies, it is the width."""
        want = _closed_form(instance)
        if want is None:
            pytest.skip("no closed form for this instance")
        assert cut_profile(instance).bisection_width() == want


class TestCacheTransparency:
    def test_cached_equals_uncached(self, instance, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        plain = cut_profile(instance)
        with collecting() as col:
            cold = cached_cut_profile(instance, cache=cache)
            warm = cached_cut_profile(instance, cache=cache)
        assert col.counters["perf.cache.hit"] == 1
        for prof in (cold, warm):
            np.testing.assert_array_equal(prof.values, plain.values)
            np.testing.assert_array_equal(prof.witnesses, plain.witnesses)

    def test_fallback_tier0_preserves_the_certificate(self, instance, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        baseline = solve_with_fallback(instance)
        assert baseline.is_exact
        cold = solve_with_fallback(instance, cache=cache)
        with collecting() as col:
            warm = solve_with_fallback(instance, cache=cache)
        assert cold.value == warm.value == baseline.value
        assert col.counters.get("perf.cache.hit", 0) >= 1
        assert warm.witness is not None
        assert isinstance(warm.witness, Cut)
        assert warm.witness.is_bisection()
        assert warm.witness.capacity == baseline.value

    def test_warm_start_seeds_branch_and_bound(self, instance):
        best = bb_min_bisection(instance)
        seeded = bb_min_bisection(instance, warm_start=best)
        assert seeded.capacity == best.capacity

    def test_symmetry_transported_hit_across_counted_orbit(self, tmp_path):
        """A cached U-profile must transport to an isomorphic counted set."""
        from repro.perf.canonical import _translation_candidates

        net = torus(3, 3)
        perm = _translation_candidates(net.shape)[4]
        counted = np.array([0, 1, 3], dtype=np.int64)
        sibling = np.sort(perm[counted])
        cache = SolverCache(tmp_path / "cache")
        base = cached_cut_profile(net, counted=counted, cache=cache)
        with collecting() as col:
            moved = cached_cut_profile(net, counted=sibling, cache=cache)
        assert col.counters.get("perf.cache.hit", 0) == 1
        np.testing.assert_array_equal(base.values, moved.values)
        plain = cut_profile(net, counted=sibling)
        np.testing.assert_array_equal(moved.values, plain.values)
