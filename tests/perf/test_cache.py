"""SolverCache behavior: certificates, warm starts, stats and counters."""

from __future__ import annotations

import numpy as np

from repro.cuts import Cut, cut_profile, min_bisection
from repro.cuts.enumerate_exact import CutProfile
from repro.obs import collecting
from repro.perf import SolverCache, cached_cut_profile
from repro.topology import wrapped_butterfly


def _exact_fields(value):
    return {
        "quantity": "BW(W4)",
        "lower": value,
        "upper": value,
        "lower_evidence": "tier-1 exhaustive enumeration",
        "upper_evidence": "explicit witness cut",
    }


class TestCertificates:
    def test_exact_roundtrip_with_witness(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        best = min_bisection(w4)
        cache.put_certificate(
            w4, _exact_fields(best.capacity), witness_side=best.side
        )
        got = cache.get_certificate(w4)
        assert got is not None
        assert got["lower"] == got["upper"] == best.capacity
        assert got["quantity"] == "BW(W4)"
        side = got["witness_side"]
        assert side is not None
        cut = Cut(w4, side)
        assert cut.is_bisection() and cut.capacity == best.capacity

    def test_inexact_is_not_a_hit_but_seeds_warm_start(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        best = min_bisection(w4)
        fields = _exact_fields(best.capacity)
        fields["lower"] = best.capacity - 1
        cache.put_certificate(w4, fields, witness_side=best.side)
        assert cache.get_certificate(w4) is None
        warm = cache.get_warm_start(w4)
        assert warm is not None
        assert Cut(w4, warm).capacity == best.capacity

    def test_version_mismatch_is_a_miss(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        cache.put_certificate(w4, _exact_fields(4), version=1)
        assert cache.get_certificate(w4, version=2) is None

    def test_tampered_witness_poisons_the_entry(self, w4, tmp_path):
        """A witness failing live verification invalidates the whole hit."""
        cache = SolverCache(tmp_path)
        wrong = np.zeros(w4.num_nodes, dtype=bool)
        wrong[: w4.num_nodes // 2] = True
        fields = _exact_fields(int(w4.cut_capacity(wrong)) + 1)
        cache.put_certificate(w4, fields, witness_side=wrong)
        assert cache.get_certificate(w4) is None
        assert cache.get_warm_start(w4) is None

    def test_axis_rotated_isomorph_hits_with_transported_witness(self, tmp_path):
        """A certificate stored for Torus(3,4) answers Torus(4,3): same
        canonical key, witness carried through the transpose and
        re-verified against the rotated instance."""
        from repro.topology import torus

        cache = SolverCache(tmp_path)
        a, b = torus(3, 4), torus(4, 3)
        best = min_bisection(a)
        cache.put_certificate(
            a,
            {
                "quantity": f"BW({a.name})",
                "lower": best.capacity,
                "upper": best.capacity,
                "lower_evidence": "tier-1 exhaustive enumeration",
                "upper_evidence": "explicit witness cut",
            },
            witness_side=best.side,
        )
        got = cache.get_certificate(b)
        assert got is not None
        assert got["lower"] == got["upper"] == best.capacity
        side = got["witness_side"]
        assert side is not None
        cut = Cut(b, side)
        assert cut.is_bisection() and cut.capacity == best.capacity

    def test_different_instances_do_not_collide(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        cache.put_certificate(w4, _exact_fields(4))
        other = wrapped_butterfly(8)
        assert cache.get_certificate(other) is None


class TestProfilesPolicy:
    def test_incomplete_profile_refused(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        prof = cut_profile(w4)
        partial = CutProfile(
            w4, prof.counted, prof.values, prof.witnesses, complete=False
        )
        assert cache.put_profile(w4, partial) is False
        assert cache.stats()["profiles"] == 0


class TestCounters:
    def test_miss_store_hit_bypass(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        with collecting() as col:
            cached_cut_profile(w4, cache=cache)  # miss + store
            cached_cut_profile(w4, cache=cache)  # hit
            cached_cut_profile(w4, cache=None)  # bypass
        assert col.counters["perf.cache.miss"] == 1
        assert col.counters["perf.cache.store"] == 1
        assert col.counters["perf.cache.hit"] == 1
        assert col.counters["perf.cache.bypass"] == 1


class TestMaintenance:
    def test_stats_and_clear(self, w4, tmp_path):
        cache = SolverCache(tmp_path)
        cache.put_profile(w4, cut_profile(w4))
        cache.put_certificate(w4, _exact_fields(4))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["profiles"] == 1
        assert stats["certificates"] == 1
        assert stats["payload_bytes"] > 0
        assert cache.clear() == 2
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["payload_bytes"] == 0
        assert cache.get_profile(w4) is None

    def test_cold_cache_stats(self, tmp_path):
        stats = SolverCache(tmp_path / "never-written").stats()
        assert stats["entries"] == 0 and stats["payload_bytes"] == 0
