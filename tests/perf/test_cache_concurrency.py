"""Multi-process cache hammering: the flock must prevent lost updates.

The index write is a read-modify-write of one JSON file; without the
``index.lock`` flock, two processes interleaving load → mutate → save
silently drop each other's entries (last writer wins over a stale
snapshot).  The stress test runs N processes putting and getting on the
same orbit under distinct entry kinds — with the lock, every kind must
survive to the final index, every payload must stay readable, and every
witness must still verify.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.cuts.enumerate_exact import cut_profile
from repro.perf.cache import SolverCache
from repro.topology import torus

_PROCS = 6
_ROUNDS = 20


def _hammer(root: str, worker: int, rounds: int) -> int:
    """One worker: interleave certificate puts, profile puts, and gets."""
    cache = SolverCache(root)
    net = torus(3, 3)
    profile = cut_profile(net)
    side = profile.witness_cut(net.num_nodes // 2).side
    fields = {
        "quantity": f"BW({net.name})",
        "lower": int(profile.bisection_width()),
        "upper": int(profile.bisection_width()),
        "lower_evidence": f"proc-{worker} exhaustive",
        "upper_evidence": f"proc-{worker} exhaustive",
    }
    ok = 0
    for r in range(rounds):
        cache.put_certificate(
            net, fields, witness_side=side, kind=f"proc-{worker}"
        )
        if r % 3 == worker % 3:
            cache.put_profile(net, profile, version=f"proc-{worker}")
        got = cache.get_certificate(net, kind=f"proc-{worker}")
        if got is not None and got["witness_side"] is not None:
            ok += 1
    return ok


@pytest.mark.slow
def test_concurrent_processes_lose_no_index_entries(tmp_path):
    root = str(tmp_path / "cache")
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(_PROCS) as pool:
        oks = pool.starmap(
            _hammer, [(root, w, _ROUNDS) for w in range(_PROCS)]
        )
    # Every worker's final write must have survived the melee: one
    # certificate entry per kind, one profile entry per version.
    idx = json.loads((tmp_path / "cache" / "index.json").read_text())
    entries = idx["entries"]
    cert_keys = [k for k in entries if entries[k]["kind"] == "certificate"]
    prof_keys = [k for k in entries if entries[k]["kind"] == "profile"]
    assert len(cert_keys) == _PROCS, sorted(entries)
    assert len(prof_keys) == _PROCS, sorted(entries)
    # And everything still reads back verified through a fresh handle.
    cache = SolverCache(root)
    net = torus(3, 3)
    for worker in range(_PROCS):
        got = cache.get_certificate(net, kind=f"proc-{worker}")
        assert got is not None and got["lower"] == got["upper"]
        assert got["witness_side"] is not None
        prof = cache.get_profile(net, version=f"proc-{worker}")
        assert prof is not None and prof.complete
    # Each worker's own reads during the run mostly succeeded too.
    assert all(ok > 0 for ok in oks)


def test_lock_file_does_not_break_single_process_reads(tmp_path):
    """The lock is writer-only: a cold read takes no lock, creates nothing."""
    cache = SolverCache(tmp_path / "cache")
    assert cache.get_certificate(torus(3, 3)) is None
    assert not (tmp_path / "cache").exists()  # reads never create the root
