"""Seeded property tests for the symmetry-quotiented cache keys.

The canonical fingerprint of :mod:`repro.perf.canonical` must be
*invariant* along the paper's automorphism orbits (Lemmas 2.1/2.2) and
must *separate* instances that are not in the same orbit — otherwise the
cache either misses isomorphic siblings or, far worse, conflates distinct
instances.  Both directions are exercised here with seeded randomness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuts import cut_profile
from repro.perf import (
    BATCH_CONTRACT_VERSION,
    SolverCache,
    canonical_form,
    permute_mask,
    unpermute_mask,
)
from repro.perf.canonical import _butterfly_candidates
from repro.topology import butterfly, wrapped_butterfly
from repro.topology.automorphism import (
    cascade_xor_permutation,
    column_xor_permutation,
    is_automorphism,
    level_reversal_permutation,
    level_rotation_permutation,
)

_TRIALS = 50


def _random_butterfly_automorphism(bf, rng):
    """A uniform sample from the L2.1/L2.2 cascade-and-reversal group."""
    base = int(rng.integers(bf.n))
    flips = tuple(bool(b) for b in rng.integers(0, 2, size=bf.lg))
    p = cascade_xor_permutation(bf, base, flips)
    if rng.integers(2):
        p = level_reversal_permutation(bf)[p]
    return p


def _random_wrapped_automorphism(wn, rng):
    """A uniform sample from the column-XOR / level-rotation group of Wn."""
    c = int(rng.integers(wn.n))
    s = int(rng.integers(wn.lg))
    return column_xor_permutation(wn, c)[level_rotation_permutation(wn, s)]


class TestOrbitInvariance:
    """Key equality along automorphism orbits (the cache-hit direction)."""

    def test_butterfly_counted_sets(self, b8, rng):
        counted = np.sort(rng.choice(b8.num_nodes, size=10, replace=False))
        base = canonical_form(b8, counted)
        for _ in range(_TRIALS):
            g = _random_butterfly_automorphism(b8, rng)
            assert is_automorphism(b8, g)
            sibling = canonical_form(b8, g[counted])
            assert sibling.key == base.key
            assert sibling.family == "butterfly"

    def test_wrapped_counted_sets(self, w8, rng):
        counted = np.sort(rng.choice(w8.num_nodes, size=9, replace=False))
        base = canonical_form(w8, counted)
        for _ in range(_TRIALS):
            g = _random_wrapped_automorphism(w8, rng)
            assert is_automorphism(w8, g)
            sibling = canonical_form(w8, g[counted])
            assert sibling.key == base.key
            assert sibling.family == "wrapped"

    def test_full_counted_set_is_structural(self, b8):
        form = canonical_form(b8)
        assert form.key.endswith(":full")
        assert form.group_size == 1
        np.testing.assert_array_equal(form.perm, np.arange(b8.num_nodes))

    def test_perm_maps_instance_onto_canonical(self, b8, rng):
        """Both orbit members land on the *same* canonical counted set."""
        counted = np.sort(rng.choice(b8.num_nodes, size=10, replace=False))
        g = _random_butterfly_automorphism(b8, rng)
        a, b = canonical_form(b8, counted), canonical_form(b8, g[counted])
        canon_a = np.sort(a.perm[counted])
        canon_b = np.sort(b.perm[g[counted]])
        np.testing.assert_array_equal(canon_a, canon_b)


class TestSeparation:
    """Non-isomorphic perturbations must get distinct keys."""

    def test_100_random_non_orbit_counted_sets(self, b8, rng):
        counted = np.sort(rng.choice(b8.num_nodes, size=10, replace=False))
        base_key = canonical_form(b8, counted).key
        orbit = {
            tuple(np.sort(p[counted]))
            for p in _butterfly_candidates(b8)
        }
        checked = 0
        while checked < 100:
            size = int(rng.integers(4, 14))
            other = np.sort(rng.choice(b8.num_nodes, size=size, replace=False))
            if tuple(other) in orbit:
                continue
            assert canonical_form(b8, other).key != base_key
            checked += 1

    def test_different_families_never_collide(self, rng):
        b4, w4 = butterfly(4), wrapped_butterfly(4)
        counted = np.arange(4)
        assert canonical_form(b4, counted).key != canonical_form(w4, counted).key

    def test_general_network_keys_track_wiring(self):
        from repro.topology import Network

        a = Network(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], name="G")
        b = Network(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], name="G")
        assert canonical_form(a).key != canonical_form(b).key
        assert canonical_form(a).family == "network"


class TestMaskTransport:
    def test_permute_unpermute_roundtrip(self, rng):
        for _ in range(_TRIALS):
            n = int(rng.integers(4, 40))
            perm = rng.permutation(n).astype(np.int64)
            mask = int(rng.integers(0, 1 << n, dtype=np.uint64))
            assert unpermute_mask(permute_mask(mask, perm), perm) == mask
            assert permute_mask(unpermute_mask(mask, perm), perm) == mask

    def test_permuted_mask_preserves_capacity(self, b4, rng):
        """An automorphism image of a cut has identical capacity (L2.1/2.2)."""
        side = rng.integers(0, 2, size=b4.num_nodes).astype(bool)
        mask = sum(1 << int(v) for v in np.flatnonzero(side))
        for _ in range(10):
            g = _random_butterfly_automorphism(b4, rng)
            moved = permute_mask(mask, g)
            moved_side = np.array(
                [(moved >> v) & 1 for v in range(b4.num_nodes)], dtype=bool
            )
            assert b4.cut_capacity(moved_side) == b4.cut_capacity(side)


class TestCacheRoundTrip:
    def test_profile_bit_identical(self, b4, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        prof = cut_profile(b4)
        assert cache.put_profile(b4, prof, version=BATCH_CONTRACT_VERSION)
        got = cache.get_profile(b4, version=BATCH_CONTRACT_VERSION)
        assert got is not None and got.complete
        np.testing.assert_array_equal(got.values, prof.values)
        np.testing.assert_array_equal(got.witnesses, prof.witnesses)
        np.testing.assert_array_equal(got.counted, prof.counted)

    def test_isomorphic_sibling_hits(self, b4, rng, tmp_path):
        """A profile stored for one instance serves its whole orbit."""
        cache = SolverCache(tmp_path / "cache")
        counted = np.sort(rng.choice(b4.num_nodes, size=6, replace=False))
        cache.put_profile(
            b4, cut_profile(b4, counted), version=BATCH_CONTRACT_VERSION
        )
        g = _random_butterfly_automorphism(b4, rng)
        sibling = np.sort(g[counted])
        got = cache.get_profile(b4, sibling, version=BATCH_CONTRACT_VERSION)
        assert got is not None, "orbit sibling should be a cache hit"
        direct = cut_profile(b4, sibling)
        np.testing.assert_array_equal(got.values, direct.values)
        for c in range(len(sibling) + 1):
            cut = got.witness_cut(c)
            assert cut.capacity == direct.values[c]
            assert cut.count_in(sibling) == c

    def test_version_bump_orphans_entries(self, b4, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        cache.put_profile(b4, cut_profile(b4), version=1)
        assert cache.get_profile(b4, version=2) is None


class TestCorruptionTolerance:
    @pytest.fixture()
    def warm(self, b4, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        cache.put_profile(b4, cut_profile(b4), version=BATCH_CONTRACT_VERSION)
        return cache

    def test_garbage_index_reads_as_empty(self, warm, b4):
        warm._index_path.write_text("{not json", encoding="utf-8")
        assert warm.get_profile(b4, version=BATCH_CONTRACT_VERSION) is None
        assert warm.stats()["entries"] == 0

    def test_truncated_payload_is_a_miss(self, warm, b4):
        (payload,) = list((warm.root / "payloads").glob("*.npz"))
        payload.write_bytes(payload.read_bytes()[:20])
        assert warm.get_profile(b4, version=BATCH_CONTRACT_VERSION) is None

    def test_recovers_by_restoring(self, warm, b4):
        (payload,) = list((warm.root / "payloads").glob("*.npz"))
        payload.write_bytes(b"garbage")
        assert warm.get_profile(b4, version=BATCH_CONTRACT_VERSION) is None
        warm.put_profile(b4, cut_profile(b4), version=BATCH_CONTRACT_VERSION)
        assert warm.get_profile(b4, version=BATCH_CONTRACT_VERSION) is not None
