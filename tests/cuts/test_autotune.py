"""Batch autotuner: memory model, latency adaptation, and bit-identity.

The adaptive batch size may never change *what* the sweep computes — the
profile fold is an elementwise minimum and the witness rule picks the
globally lowest achieving mask — so autotuned and fixed-size runs must be
bit-identical.  The tuner's decisions themselves are tested with an
injected clock so no test depends on wall time.
"""

from __future__ import annotations

import numpy as np

from repro.cuts import cut_profile
from repro.cuts.autotune import (
    BATCH_CONTRACT_VERSION,
    BatchAutotuner,
    pin_chunk_count,
)
from repro.obs import collecting


class TestInitialBits:
    def test_clamped_to_max_for_light_instances(self):
        tuner = BatchAutotuner(edges=8, memory_budget=1 << 30)
        assert tuner.initial_bits() == tuner.max_bits

    def test_memory_budget_caps_the_exponent(self):
        # 4 int64 lanes of 2^bits entries must fit the budget:
        # 2^12 * 4 * 8 = 2^17 bytes exactly.
        tuner = BatchAutotuner(edges=8, memory_budget=1 << 17)
        assert tuner.initial_bits() == 12

    def test_heavy_edge_arrays_start_lower(self):
        light = BatchAutotuner(edges=64).initial_bits()
        heavy = BatchAutotuner(edges=64 * 4**3).initial_bits()
        assert heavy == light - 3

    def test_never_below_min_bits(self):
        tuner = BatchAutotuner(edges=1 << 30, memory_budget=1)
        assert tuner.initial_bits() == tuner.min_bits


class TestAdaptation:
    def test_fast_batches_grow(self):
        tuner = BatchAutotuner(edges=8)
        assert tuner.next_bits(12, elapsed=0.001) == 13

    def test_slow_batches_shrink(self):
        tuner = BatchAutotuner(edges=8)
        assert tuner.next_bits(12, elapsed=1.0) == 11

    def test_in_window_holds(self):
        tuner = BatchAutotuner(edges=8)
        assert tuner.next_bits(12, elapsed=0.1) == 12

    def test_clamps(self):
        tuner = BatchAutotuner(edges=8, min_bits=10, max_bits=14)
        assert tuner.next_bits(14, elapsed=0.001) == 14
        assert tuner.next_bits(10, elapsed=9.9) == 10

    def test_adjustments_are_counted(self):
        tuner = BatchAutotuner(edges=8)
        with collecting() as col:
            tuner.next_bits(12, elapsed=0.001)
            tuner.next_bits(12, elapsed=0.1)
        assert col.counters["perf.autotune.adjustments"] == 1
        assert col.gauges["perf.autotune.batch_bits"] == 13


class TestPinChunks:
    def test_no_pins_no_chunks(self):
        assert pin_chunk_count(0, workers=4, states_per_pin=100) == 0

    def test_never_more_chunks_than_pins(self):
        assert pin_chunk_count(4, workers=8, states_per_pin=100) == 4

    def test_steal_granularity_floor(self):
        assert pin_chunk_count(1000, workers=2, states_per_pin=1) == 8
        assert pin_chunk_count(1000, workers=8, states_per_pin=1) == 32

    def test_heavy_states_split_finer(self):
        # One pin exhausts the ops budget, so every pin is its own chunk.
        assert pin_chunk_count(100, workers=2, states_per_pin=1 << 24) == 100


class TestBitIdentity:
    def test_autotuned_profile_matches_fixed(self, w4):
        fixed = cut_profile(w4, batch_bits=4)
        auto = cut_profile(w4)  # batch_bits=None -> autotuned
        np.testing.assert_array_equal(auto.values, fixed.values)
        np.testing.assert_array_equal(auto.witnesses, fixed.witnesses)

    def test_any_two_grids_agree(self, b4):
        a = cut_profile(b4, batch_bits=3)
        b = cut_profile(b4, batch_bits=11)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.witnesses, b.witnesses)

    def test_contract_version_is_current(self):
        assert BATCH_CONTRACT_VERSION == 2
