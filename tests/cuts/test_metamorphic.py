"""Metamorphic tests: solver outputs must respect the network's symmetries.

The automorphisms of Lemmas 2.1/2.2 give free oracles: applying any
automorphism to a cut preserves its capacity and balance, so optimal
values are invariant, witnesses map to witnesses, and per-level profiles
permute consistently.  Violations would expose indexing bugs that plain
unit tests can miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import Cut, layered_cut_profile, layered_u_bisection_width
from repro.topology import (
    butterfly,
    cascade_xor_permutation,
    column_xor_permutation,
    level_reversal_permutation,
    level_rotation_permutation,
    wrapped_butterfly,
)


class TestCutInvariance:
    @given(st.integers(0, 500), st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant_under_column_xor(self, seed, c):
        bf = butterfly(8)
        rng = np.random.default_rng(seed)
        cut = Cut(bf, rng.random(bf.num_nodes) < 0.5)
        perm = column_xor_permutation(bf, c)
        mapped = Cut(bf, cut.side[np.argsort(perm)])
        assert mapped.capacity == cut.capacity
        assert mapped.s_size == cut.s_size

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_capacity_invariant_under_reversal(self, seed):
        bf = butterfly(8)
        rng = np.random.default_rng(seed)
        cut = Cut(bf, rng.random(bf.num_nodes) < 0.5)
        perm = level_reversal_permutation(bf)
        mapped = Cut(bf, cut.side[np.argsort(perm)])
        assert mapped.capacity == cut.capacity

    @given(st.integers(0, 500), st.integers(0, 2))
    @settings(max_examples=30, deadline=None)
    def test_wrapped_rotation_invariance(self, seed, shift):
        wf = wrapped_butterfly(8)
        rng = np.random.default_rng(seed)
        cut = Cut(wf, rng.random(wf.num_nodes) < 0.5)
        perm = level_rotation_permutation(wf, shift)
        mapped = Cut(wf, cut.side[np.argsort(perm)])
        assert mapped.capacity == cut.capacity


class TestSolverInvariance:
    def test_level_bisection_widths_symmetric(self, b8):
        """Lemma 2.1's reversal: BW(B8, L_i) == BW(B8, L_{log n - i})."""
        vals = [
            layered_u_bisection_width(b8, b8.level(i)) for i in range(b8.lg + 1)
        ]
        assert vals == vals[::-1]

    def test_witness_maps_to_witness(self, b4):
        """An optimal bisection pushed through an automorphism is still an
        optimal bisection."""
        prof = layered_cut_profile(b4)
        cut = prof.min_bisection()
        for c in range(4):
            perm = column_xor_permutation(b4, c)
            mapped = Cut(b4, cut.side[np.argsort(perm)])
            assert mapped.capacity == cut.capacity == 4
            assert mapped.is_bisection()

    def test_cascade_flip_preserves_profile(self, b4):
        """A straight/cross swapping automorphism leaves the exact profile
        untouched (it is a relabeling of the same network)."""
        prof = layered_cut_profile(b4, with_witnesses=False).values
        perm = cascade_xor_permutation(b4, 3, [True, False])
        # Build the relabeled network explicitly and recompute.
        inv = np.argsort(perm)
        relabeled_edges = perm[b4.edges]
        from repro.topology import Network

        net2 = Network(range(b4.num_nodes), relabeled_edges, name="B4'")
        layers = [perm[b4.level(i)] for i in range(b4.num_levels)]
        layers = [np.sort(l) for l in layers]
        prof2 = layered_cut_profile(net2, layers=layers, cyclic=False,
                                    with_witnesses=False).values
        assert np.array_equal(prof, prof2)
