"""The layered min-plus DP versus ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import cut_profile, layered_cut_profile, layered_u_bisection_width
from repro.topology import (
    Network,
    butterfly,
    cube_connected_cycles,
    mesh_of_stars,
    wrapped_butterfly,
)


def random_layered_network(rng, cyclic):
    """A random layered (multi)graph with optional intra-layer edges."""
    L = int(rng.integers(2, 5))
    widths = rng.integers(1, 5, size=L)
    layers = []
    start = 0
    for w in widths:
        layers.append(np.arange(start, start + w))
        start += w
    edges = []
    bound = L if cyclic else L - 1
    for l in range(bound):
        a, b = layers[l], layers[(l + 1) % L]
        for u in a:
            for v in b:
                if rng.random() < 0.5:
                    edges.append((int(u), int(v)))
    for l in range(L):
        a = layers[l]
        for i in range(len(a)):
            for j in range(i + 1, len(a)):
                if rng.random() < 0.3:
                    edges.append((int(a[i]), int(a[j])))
    if not edges:
        edges = [(int(layers[0][0]), int(layers[1][0]))]
    net = Network(range(start), edges, name="randlay")
    return net, layers


class TestAgainstEnumeration:
    @given(st.integers(0, 500), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_matches_enumeration_on_random_layered(self, seed, cyclic):
        rng = np.random.default_rng(seed)
        net, layers = random_layered_network(rng, cyclic)
        dp = layered_cut_profile(net, layers=layers, cyclic=cyclic)
        enum = cut_profile(net)
        assert np.array_equal(dp.values, enum.values)

    def test_b4(self, b4):
        assert np.array_equal(
            layered_cut_profile(b4).values, cut_profile(b4).values
        )

    def test_w4_multigraph(self, w4):
        assert np.array_equal(
            layered_cut_profile(w4).values, cut_profile(w4).values
        )

    def test_ccc4_intra_layer_edges(self):
        ccc = cube_connected_cycles(4)
        assert np.array_equal(
            layered_cut_profile(ccc).values, cut_profile(ccc).values
        )

    def test_mos(self):
        mos = mesh_of_stars(2, 3)
        assert np.array_equal(
            layered_cut_profile(mos).values, cut_profile(mos).values
        )


class TestPaperValues:
    def test_bw_b8_exact(self, b8):
        assert layered_cut_profile(b8, with_witnesses=False).bisection_width() == 8

    @pytest.mark.slow
    def test_bw_w8_exact(self, w8):
        assert layered_cut_profile(w8, with_witnesses=False).bisection_width() == 8

    @pytest.mark.slow
    def test_bw_ccc8_exact(self, ccc8):
        assert layered_cut_profile(ccc8, with_witnesses=False).bisection_width() == 4

    def test_lemma31_io_bisections(self, b8):
        assert layered_u_bisection_width(b8, b8.inputs()) == 8
        assert layered_u_bisection_width(b8, b8.outputs()) == 8
        io = np.concatenate([b8.inputs(), b8.outputs()])
        assert layered_u_bisection_width(b8, io) == 8


class TestWitnesses:
    def test_witnesses_valid(self, b8):
        prof = layered_cut_profile(b8)
        for c in (0, 5, 16, 20, 32):
            cut = prof.witness(c)
            assert cut.s_size == c
            assert cut.capacity == prof.values[c]

    def test_min_bisection_witness(self, b4):
        cut = layered_cut_profile(b4).min_bisection()
        assert cut.is_bisection()
        assert cut.capacity == 4

    def test_cyclic_witnesses(self, w4):
        prof = layered_cut_profile(w4)
        for c in (1, 4, 6):
            cut = prof.witness(c)
            assert cut.s_size == c
            assert cut.capacity == prof.values[c]


class TestGuards:
    def test_width_limit(self, b16):
        with pytest.raises(ValueError, match="max_width"):
            layered_cut_profile(b16, max_width=12)

    def test_non_layered_edges_detected(self):
        net = Network(range(4), [(0, 3)])
        layers = [np.array([0]), np.array([1]), np.array([2]), np.array([3])]
        with pytest.raises(ValueError, match="not layered"):
            layered_cut_profile(net, layers=layers, cyclic=False)

    def test_incomplete_layers_detected(self, b4):
        with pytest.raises(ValueError, match="cover"):
            layered_cut_profile(b4, layers=[b4.level(0)], cyclic=False)


class TestCountedProfiles:
    """Counted (U-restricted) profiles against enumeration."""

    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_counted_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        net, layers = random_layered_network(rng, cyclic=bool(seed % 2))
        k = int(rng.integers(1, net.num_nodes + 1))
        counted = rng.choice(net.num_nodes, size=k, replace=False)
        dp = layered_cut_profile(
            net, layers=layers, cyclic=bool(seed % 2), counted=counted,
            with_witnesses=False,
        )
        enum = cut_profile(net, counted=counted)
        assert np.array_equal(dp.values, enum.values)

    def test_counted_witnesses(self, b4):
        counted = b4.inputs()
        prof = layered_cut_profile(b4, counted=counted)
        for c in range(len(counted) + 1):
            cut = prof.witness(c)
            assert cut.count_in(counted) == c
            assert cut.capacity == prof.values[c]

    def test_level_bisection_values(self, b8):
        """BW(B8, L_i) per level — the quantities of Lemma 2.12(1)."""
        vals = [
            layered_u_bisection_width(b8, b8.level(i)) for i in range(b8.lg + 1)
        ]
        bw = layered_cut_profile(b8, with_witnesses=False).bisection_width()
        assert min(vals) <= bw
