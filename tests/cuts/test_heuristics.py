"""Kernighan–Lin, Fiduccia–Mattheyses and spectral bisection."""

import numpy as np
import pytest

from repro.cuts import (
    Cut,
    fm_bisection,
    fm_refine,
    kernighan_lin_bisection,
    kl_refine,
    layered_cut_profile,
    spectral_bisection,
)
from repro.topology import butterfly, hypercube, hypercube_bisection_width, wrapped_butterfly


class TestKernighanLin:
    def test_balanced_output(self, b8):
        cut = kernighan_lin_bisection(b8, restarts=2)
        assert cut.is_bisection()
        assert cut.s_size == 16

    def test_refine_never_worsens(self, b8, rng):
        side = np.zeros(32, dtype=bool)
        side[rng.permutation(32)[:16]] = True
        cut = Cut(b8, side)
        refined = kl_refine(cut)
        assert refined.capacity <= cut.capacity
        assert refined.s_size == cut.s_size

    def test_reaches_exact_on_b8(self, b8):
        exact = layered_cut_profile(b8, with_witnesses=False).bisection_width()
        assert kernighan_lin_bisection(b8, restarts=4).capacity == exact

    def test_hypercube(self):
        q = hypercube(4)
        cut = kernighan_lin_bisection(q, restarts=4)
        assert cut.capacity == hypercube_bisection_width(4)


class TestFiducciaMattheyses:
    def test_balanced_output(self, b8):
        cut = fm_bisection(b8, restarts=2)
        assert cut.is_bisection()

    def test_refine_never_worsens(self, b8, rng):
        side = np.zeros(32, dtype=bool)
        side[rng.permutation(32)[:16]] = True
        cut = Cut(b8, side)
        refined = fm_refine(cut)
        assert refined.capacity <= cut.capacity
        assert refined.s_size == cut.s_size

    def test_upper_bounds_exact(self, b8):
        exact = layered_cut_profile(b8, with_witnesses=False).bisection_width()
        assert fm_bisection(b8, restarts=3).capacity >= exact


class TestSpectral:
    def test_balanced_output(self, b8):
        cut = spectral_bisection(b8)
        assert cut.is_bisection()

    def test_reaches_exact_on_b8(self, b8):
        exact = layered_cut_profile(b8, with_witnesses=False).bisection_width()
        assert spectral_bisection(b8).capacity == exact

    def test_unrefined_still_balanced(self, b8):
        cut = spectral_bisection(b8, refine=False)
        assert cut.is_bisection()

    def test_column_cut_quality_on_w16(self):
        """Heuristics should find the optimal n cut on W16 (BW = 16)."""
        w16 = wrapped_butterfly(16)
        cut = spectral_bisection(w16)
        assert cut.capacity == 16

    def test_larger_instances(self):
        b32 = butterfly(32)
        cut = spectral_bisection(b32)
        assert cut.is_bisection()
        assert cut.capacity <= 32  # never worse than folklore
