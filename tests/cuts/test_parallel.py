"""Process-parallel cyclic DP."""

import numpy as np
import pytest

from repro.cuts import layered_cut_profile
from repro.cuts.parallel import parallel_cyclic_profile
from repro.topology import cube_connected_cycles, wrapped_butterfly


class TestCorrectness:
    def test_w4_matches_serial(self, w4):
        serial = layered_cut_profile(w4, with_witnesses=False).values
        par = parallel_cyclic_profile(w4, workers=2)
        assert np.array_equal(serial, par)

    def test_ccc4_matches_serial(self):
        ccc = cube_connected_cycles(4)
        serial = layered_cut_profile(ccc, with_witnesses=False).values
        par = parallel_cyclic_profile(ccc, workers=3)
        assert np.array_equal(serial, par)

    def test_single_worker_path(self, w4):
        serial = layered_cut_profile(w4, with_witnesses=False).values
        par = parallel_cyclic_profile(w4, workers=1)
        assert np.array_equal(serial, par)

    def test_counted_sets(self, w4):
        counted = w4.level(0)
        serial = layered_cut_profile(
            w4, counted=counted, with_witnesses=False
        ).values
        par = parallel_cyclic_profile(w4, counted=counted, workers=2)
        assert np.array_equal(serial, par)

    @pytest.mark.slow
    def test_w8_matches_serial(self, w8):
        serial = layered_cut_profile(w8, with_witnesses=False).values
        par = parallel_cyclic_profile(w8, workers=4)
        assert np.array_equal(serial, par)
        assert int(min(par[12], par[12])) == 8  # BW(W8) = n


class TestGuards:
    def test_rejects_acyclic(self, b4):
        with pytest.raises(ValueError, match="cyclic"):
            parallel_cyclic_profile(b4)

    def test_width_limit(self):
        w16 = wrapped_butterfly(16)
        with pytest.raises(ValueError, match="max_width"):
            parallel_cyclic_profile(w16)


class _PollClock:
    """Each read advances one second; budgets expire deterministically."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def _no_leaked_children(timeout=5.0):
    import multiprocessing
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


class TestFaultTolerance:
    def test_sigkilled_worker_recovers_by_retry(self, w4, tmp_path):
        """Acceptance: a worker SIGKILLs itself mid-sweep; the supervised
        pool detects the lost pin range by timeout, retries it, and the
        profile still equals the serial one exactly."""
        from repro.resilience import RetryPolicy
        from repro.resilience.faults import arm_crash_token

        token = arm_crash_token(tmp_path / "crash")
        serial = layered_cut_profile(w4, with_witnesses=False).values
        status = {}
        par = parallel_cyclic_profile(
            w4, workers=2,
            fault_token=str(token),
            policy=RetryPolicy(task_timeout=1.0, max_retries=2, backoff=0.05),
            status=status,
        )
        assert np.array_equal(serial, par)
        assert status["complete"]
        assert not token.exists()  # exactly one worker consumed it and died
        report = status["report"]
        assert report.timeouts >= 1 or report.serial_tasks >= 1
        assert _no_leaked_children()

    def test_budget_expiry_returns_partial_with_status(self, w4):
        from repro.resilience import Budget

        status = {}
        par = parallel_cyclic_profile(
            w4, workers=1, budget=Budget(3.5, clock=_PollClock()),
            status=status,
        )
        assert not status["complete"]
        assert 0 < status["pins_done"] < status["total_pins"]
        # Whatever was swept is a valid upper bound on the serial profile.
        serial = layered_cut_profile(w4, with_witnesses=False).values
        assert np.all(par >= serial)


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_bit_identical(self, w4, tmp_path):
        """Acceptance: checkpointed sweep killed by budget, then resumed
        without one, is bit-identical to the uninterrupted run."""
        from repro.resilience import Budget

        ck = tmp_path / "pins.json"
        status = {}
        parallel_cyclic_profile(
            w4, workers=1, budget=Budget(3.5, clock=_PollClock()),
            checkpoint=ck, status=status,
        )
        assert not status["complete"]
        assert ck.exists()

        resumed_status = {}
        resumed = parallel_cyclic_profile(
            w4, workers=1, checkpoint=ck, status=resumed_status,
        )
        assert resumed_status["complete"]
        serial = layered_cut_profile(w4, with_witnesses=False).values
        assert np.array_equal(resumed, serial)
        # The resumed run only swept the ranges the first run left undone.
        assert resumed_status["report"].total < status["total_pins"]
