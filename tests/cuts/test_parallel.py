"""Process-parallel cyclic DP."""

import numpy as np
import pytest

from repro.cuts import layered_cut_profile
from repro.cuts.parallel import parallel_cyclic_profile
from repro.topology import cube_connected_cycles, wrapped_butterfly


class TestCorrectness:
    def test_w4_matches_serial(self, w4):
        serial = layered_cut_profile(w4, with_witnesses=False).values
        par = parallel_cyclic_profile(w4, workers=2)
        assert np.array_equal(serial, par)

    def test_ccc4_matches_serial(self):
        ccc = cube_connected_cycles(4)
        serial = layered_cut_profile(ccc, with_witnesses=False).values
        par = parallel_cyclic_profile(ccc, workers=3)
        assert np.array_equal(serial, par)

    def test_single_worker_path(self, w4):
        serial = layered_cut_profile(w4, with_witnesses=False).values
        par = parallel_cyclic_profile(w4, workers=1)
        assert np.array_equal(serial, par)

    def test_counted_sets(self, w4):
        counted = w4.level(0)
        serial = layered_cut_profile(
            w4, counted=counted, with_witnesses=False
        ).values
        par = parallel_cyclic_profile(w4, counted=counted, workers=2)
        assert np.array_equal(serial, par)

    @pytest.mark.slow
    def test_w8_matches_serial(self, w8):
        serial = layered_cut_profile(w8, with_witnesses=False).values
        par = parallel_cyclic_profile(w8, workers=4)
        assert np.array_equal(serial, par)
        assert int(min(par[12], par[12])) == 8  # BW(W8) = n


class TestGuards:
    def test_rejects_acyclic(self, b4):
        with pytest.raises(ValueError, match="cyclic"):
            parallel_cyclic_profile(b4)

    def test_width_limit(self):
        w16 = wrapped_butterfly(16)
        with pytest.raises(ValueError, match="max_width"):
            parallel_cyclic_profile(w16)
