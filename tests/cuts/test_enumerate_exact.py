"""Exhaustive exact cuts."""

import numpy as np
import pytest

from repro.cuts import Cut, cut_profile, min_bisection, min_u_bisection
from repro.topology import Network, butterfly, complete_graph


def path_graph(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


def cycle_graph(n):
    return Network(range(n), [(i, (i + 1) % n) for i in range(n)], name=f"C{n}")


class TestKnownValues:
    def test_path_profile(self):
        """A path of n nodes: any proper prefix cut costs 1."""
        prof = cut_profile(path_graph(6))
        assert prof.values.tolist() == [0, 1, 1, 1, 1, 1, 0]

    def test_cycle_bisection(self):
        assert cut_profile(cycle_graph(8)).bisection_width() == 2

    def test_complete_graph(self):
        prof = cut_profile(complete_graph(6))
        for k in range(7):
            assert prof.values[k] == k * (6 - k)

    def test_b4_bisection(self, b4):
        assert cut_profile(b4).bisection_width() == 4

    def test_multigraph(self):
        net = Network(range(4), [(0, 1), (0, 1), (1, 2), (2, 3)])
        prof = cut_profile(net)
        assert prof.values[1] == 1  # isolate node 3


class TestProfileInvariants:
    def test_symmetry(self, b4):
        prof = cut_profile(b4)
        assert np.array_equal(prof.values, prof.values[::-1])

    def test_endpoints_zero(self, b4):
        prof = cut_profile(b4)
        assert prof.values[0] == 0 and prof.values[-1] == 0

    def test_witnesses_realize_values(self, b4):
        prof = cut_profile(b4)
        for c in range(13):
            cut = prof.witness_cut(c)
            assert cut.capacity == prof.values[c]
            assert cut.s_size == c

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            cut_profile(complete_graph(29))


class TestUBisection:
    def test_counted_subset(self, b4):
        """Bisecting only the inputs of B4 costs n = 4 (Lemma 3.1)."""
        prof = cut_profile(b4, counted=b4.inputs())
        assert prof.bisection_width() == 4

    def test_min_u_bisection_witness(self, b4):
        cut = min_u_bisection(b4, b4.inputs())
        assert cut.bisects(b4.inputs())
        assert cut.capacity == 4

    def test_min_bisection_witness(self, b4):
        cut = min_bisection(b4)
        assert cut.is_bisection()
        assert cut.capacity == 4

    def test_counted_singleton(self):
        net = path_graph(5)
        prof = cut_profile(net, counted=np.array([2]))
        # Bisecting a single node means either side may hold it; the empty
        # cut qualifies.
        assert prof.bisection_width() == 0


class _PollClock:
    """Each read advances one second; budgets expire deterministically."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestActionableSizeError:
    def test_message_names_the_limit_and_the_alternatives(self):
        with pytest.raises(ValueError) as exc:
            cut_profile(complete_graph(29))
        msg = str(exc.value)
        assert "28" in msg
        assert "layered_dp" in msg
        assert "branch_and_bound" in msg
        assert "heuristic" in msg


class TestBudgetedSweep:
    def test_expired_budget_yields_partial_not_raise(self):
        from repro.resilience import Budget

        prof = cut_profile(path_graph(10), budget=Budget(0))
        assert not prof.complete
        assert np.all(prof.values == np.iinfo(np.int64).max)

    def test_partial_entries_are_valid_upper_bounds(self):
        from repro.resilience import Budget

        net = path_graph(14)
        budget = Budget(3.5, clock=_PollClock())
        prof = cut_profile(net, budget=budget, batch_bits=8)
        full = cut_profile(net)
        assert not prof.complete
        sentinel = np.iinfo(np.int64).max
        examined = prof.values < sentinel
        assert examined.any()
        assert np.all(prof.values[examined] >= full.values[examined])
        for c in np.flatnonzero(examined):
            assert prof.witness_cut(int(c)).capacity == prof.values[c]

    def test_max_batch_bits_caps_the_batch(self):
        from repro.resilience import Budget

        # With 2-bit batches a 3-poll budget covers at most 8 assignments.
        budget = Budget(3.5, clock=_PollClock(), max_batch_bits=2)
        prof = cut_profile(path_graph(12), budget=budget)
        assert not prof.complete


class TestCheckpointResume:
    def test_interrupted_then_resumed_is_bit_identical(self, tmp_path):
        """Acceptance: kill mid-sweep via budget, resume, compare exactly."""
        from repro.resilience import Budget

        net = butterfly(4)  # 12 nodes, 2^11 assignments
        ck = tmp_path / "profile.json"
        budget = Budget(4.5, clock=_PollClock())
        partial = cut_profile(net, budget=budget, checkpoint=ck, batch_bits=6)
        assert not partial.complete
        assert ck.exists()

        resumed = cut_profile(net, checkpoint=ck, batch_bits=6)
        fresh = cut_profile(net, batch_bits=6)
        assert resumed.complete
        assert np.array_equal(resumed.values, fresh.values)
        assert np.array_equal(resumed.witnesses, fresh.witnesses)

    def test_resume_ignores_a_foreign_checkpoint(self, tmp_path):
        ck = tmp_path / "profile.json"
        cut_profile(path_graph(10), checkpoint=ck, batch_bits=4)
        # Different network, same file: fingerprint mismatch, fresh sweep.
        prof = cut_profile(cycle_graph(10), checkpoint=ck, batch_bits=4)
        assert prof.complete
        assert prof.bisection_width() == 2

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        ck = tmp_path / "profile.json"
        net = path_graph(10)
        first = cut_profile(net, checkpoint=ck, batch_bits=4)
        again = cut_profile(net, checkpoint=ck, batch_bits=4)
        assert np.array_equal(first.values, again.values)
        assert np.array_equal(first.witnesses, again.witnesses)


class TestFingerprint:
    """The checkpoint/cache key must track wiring and the batch contract.

    Regression: the fingerprint once keyed only on name and node count, so
    two same-shaped networks with different wiring (or different counted
    masks) could resume each other's checkpoints.
    """

    def test_same_shape_different_wiring_differs(self):
        from repro.cuts.enumerate_exact import _fingerprint

        a = Network(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], name="G")
        b = Network(range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], name="G")
        counted = np.arange(6)
        assert a.num_nodes == b.num_nodes and a.num_edges == b.num_edges
        assert _fingerprint(a, counted) != _fingerprint(b, counted)

    def test_counted_mask_is_keyed(self):
        from repro.cuts.enumerate_exact import _fingerprint

        net = path_graph(6)
        assert _fingerprint(net, np.arange(6)) != _fingerprint(
            net, np.arange(4)
        )

    def test_contract_version_is_keyed(self):
        from repro.cuts.autotune import BATCH_CONTRACT_VERSION
        from repro.cuts.enumerate_exact import _fingerprint

        fp = _fingerprint(path_graph(6), np.arange(6))
        assert f":v{BATCH_CONTRACT_VERSION}:" in fp

    def test_batch_size_is_not_keyed(self, tmp_path):
        """Differing batch grids share checkpoints (the fold is batch-free)."""
        ck = tmp_path / "profile.json"
        net = path_graph(12)
        cut_profile(net, checkpoint=ck, batch_bits=4)
        prof = cut_profile(net, checkpoint=ck, batch_bits=7)
        fresh = cut_profile(net)
        assert prof.complete
        assert np.array_equal(prof.values, fresh.values)
        assert np.array_equal(prof.witnesses, fresh.witnesses)
