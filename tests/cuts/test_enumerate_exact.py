"""Exhaustive exact cuts."""

import numpy as np
import pytest

from repro.cuts import Cut, cut_profile, min_bisection, min_u_bisection
from repro.topology import Network, butterfly, complete_graph


def path_graph(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


def cycle_graph(n):
    return Network(range(n), [(i, (i + 1) % n) for i in range(n)], name=f"C{n}")


class TestKnownValues:
    def test_path_profile(self):
        """A path of n nodes: any proper prefix cut costs 1."""
        prof = cut_profile(path_graph(6))
        assert prof.values.tolist() == [0, 1, 1, 1, 1, 1, 0]

    def test_cycle_bisection(self):
        assert cut_profile(cycle_graph(8)).bisection_width() == 2

    def test_complete_graph(self):
        prof = cut_profile(complete_graph(6))
        for k in range(7):
            assert prof.values[k] == k * (6 - k)

    def test_b4_bisection(self, b4):
        assert cut_profile(b4).bisection_width() == 4

    def test_multigraph(self):
        net = Network(range(4), [(0, 1), (0, 1), (1, 2), (2, 3)])
        prof = cut_profile(net)
        assert prof.values[1] == 1  # isolate node 3


class TestProfileInvariants:
    def test_symmetry(self, b4):
        prof = cut_profile(b4)
        assert np.array_equal(prof.values, prof.values[::-1])

    def test_endpoints_zero(self, b4):
        prof = cut_profile(b4)
        assert prof.values[0] == 0 and prof.values[-1] == 0

    def test_witnesses_realize_values(self, b4):
        prof = cut_profile(b4)
        for c in range(13):
            cut = prof.witness_cut(c)
            assert cut.capacity == prof.values[c]
            assert cut.s_size == c

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            cut_profile(complete_graph(29))


class TestUBisection:
    def test_counted_subset(self, b4):
        """Bisecting only the inputs of B4 costs n = 4 (Lemma 3.1)."""
        prof = cut_profile(b4, counted=b4.inputs())
        assert prof.bisection_width() == 4

    def test_min_u_bisection_witness(self, b4):
        cut = min_u_bisection(b4, b4.inputs())
        assert cut.bisects(b4.inputs())
        assert cut.capacity == 4

    def test_min_bisection_witness(self, b4):
        cut = min_bisection(b4)
        assert cut.is_bisection()
        assert cut.capacity == 4

    def test_counted_singleton(self):
        net = path_graph(5)
        prof = cut_profile(net, counted=np.array([2]))
        # Bisecting a single node means either side may hold it; the empty
        # cut qualifies.
        assert prof.bisection_width() == 0
