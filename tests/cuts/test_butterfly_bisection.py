"""Theorem 2.20's construction: verified sub-n bisections of Bn."""

import math

import numpy as np
import pytest

from repro.cuts import (
    best_plan,
    build_planned_bisection,
    butterfly_bisection_below_n,
    mos_quotient_map,
    plan_bisection,
)
from repro.embeddings import mos_fiber_map
from repro.topology import butterfly


class TestQuotientMap:
    def test_matches_embedding_fiber_map(self):
        """The arithmetic quotient equals the Lemma 2.11 embedding's map."""
        bf = butterfly(64)
        assert np.array_equal(mos_quotient_map(bf, 4), mos_fiber_map(bf, 4, 4))

    def test_fiber_sizes(self):
        bf = butterfly(64)
        q = mos_quotient_map(bf, 4)
        counts = np.bincount(q)
        j = 4
        lgj, lg = 2, 6
        assert (counts[:j] == (64 // j) * lgj).all()              # M1
        assert (counts[j:j + j * j] == (64 // 16) * (lg - 2 * lgj + 1)).all()  # M2
        assert (counts[j + j * j:] == (64 // j) * lgj).all()      # M3

    def test_rejects_bad_j(self):
        bf = butterfly(16)
        with pytest.raises(ValueError):
            mos_quotient_map(bf, 3)
        with pytest.raises(ValueError):
            mos_quotient_map(bf, 8)  # j^2 > n

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            mos_quotient_map(w8, 2)

    def test_quotient_edges_respect_mos(self):
        """Butterfly edges map to MOS edges or stay inside a fiber."""
        from repro.topology import mesh_of_stars

        bf = butterfly(64)
        j = 4
        q = mos_quotient_map(bf, j)
        mos = mesh_of_stars(j, j)
        for u, v in bf.edges:
            fu, fv = int(q[u]), int(q[v])
            assert fu == fv or mos.has_edge(fu, fv)


class TestPlans:
    def test_plan_balance_arithmetic(self):
        plan = plan_bisection(1 << 12, 8, 5, 5)
        assert plan is not None
        # Recompute |S| from the plan's own fields.
        s = (plan.a + plan.b) * plan.side_block
        s += (plan.a * plan.b - plan.aa_flipped) * plan.fiber_size
        s += (plan.mixed_in_s + plan.bb_flipped) * plan.fiber_size
        s += plan.drain_in_s
        assert s == plan.n * (plan.lg + 1) // 2

    def test_plan_capacity_formula(self):
        plan = plan_bisection(1 << 12, 8, 5, 5)
        cong = 2 * plan.n // (plan.j * plan.j)
        assert plan.capacity == cong * (
            plan.mixed + 2 * plan.aa_flipped + 2 * plan.bb_flipped
        )

    def test_infeasible_shapes_return_none(self):
        # a = b = j: everything in S, nothing mixed, cannot rebalance.
        assert plan_bisection(1 << 10, 8, 8, 8) is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            plan_bisection(1000, 8, 4, 4)  # n not a power of two
        with pytest.raises(ValueError):
            plan_bisection(1 << 10, 8, 9, 0)  # a out of range

    def test_best_plan_below_n(self):
        for lg in (10, 12, 14, 20):
            plan = best_plan(1 << lg)
            assert plan.capacity < (1 << lg)

    def test_best_plan_approaches_limit(self):
        """The analytic series descends toward 2(sqrt 2 - 1)."""
        limit = 2 * (math.sqrt(2) - 1)
        r100 = best_plan(1 << 100).capacity_over_n
        r800 = best_plan(1 << 800).capacity_over_n
        assert limit < r800 < r100 < 1.0

    def test_plan_strictly_above_theorem_floor(self):
        limit = 2 * (math.sqrt(2) - 1)
        for lg in (10, 16, 60):
            assert best_plan(1 << lg).capacity_over_n > limit


class TestBuiltCuts:
    @pytest.mark.parametrize("n,j,a,b", [
        (1 << 10, 4, 3, 3),
        (1 << 10, 8, 5, 5),
        (1 << 10, 16, 7, 7),
        (1 << 12, 8, 5, 6),
        (1 << 12, 16, 9, 9),
    ])
    def test_build_verifies(self, n, j, a, b):
        """build_planned_bisection asserts balance and exact capacity."""
        plan = plan_bisection(n, j, a, b)
        if plan is None:
            pytest.skip("shape not balanceable")
        cut = build_planned_bisection(plan)
        assert cut.capacity == plan.capacity
        assert cut.s_size == cut.complement_size

    def test_aa_flip_branch(self):
        """Force the paid branch (base > target) and verify it too."""
        n = 1 << 10
        plan = plan_bisection(n, 8, 7, 7)  # heavy shape
        assert plan is not None and plan.aa_flipped > 0
        cut = build_planned_bisection(plan)
        assert cut.capacity == plan.capacity

    def test_folklore_refutation_entry_point(self):
        plan, cut = butterfly_bisection_below_n(1 << 10)
        assert cut is not None
        assert cut.capacity == plan.capacity < (1 << 10)
        assert cut.is_bisection()

    def test_wrong_network_rejected(self):
        plan = plan_bisection(1 << 10, 8, 5, 5)
        with pytest.raises(ValueError):
            build_planned_bisection(plan, butterfly(512))


class TestConstructionVsHeuristics:
    """The construction finds what generic heuristics do not."""

    @pytest.mark.slow
    def test_beats_spectral_and_fm_at_1024(self):
        """At n = 2^10 spectral bisection lands exactly on the folklore
        column cut (1024) and FM cannot improve either it or our cut —
        the 1008-capacity pullback is strictly better and FM-locally
        optimal."""
        from repro.cuts import fm_refine, spectral_bisection

        n = 1 << 10
        bf = butterfly(n)
        plan = best_plan(n)
        ours = build_planned_bisection(plan, bf)
        spec = spectral_bisection(bf, refine=False)
        assert spec.capacity == n                      # heuristic = folklore
        assert fm_refine(spec, max_passes=2).capacity == n
        assert ours.capacity < n                       # the paper's insight
        assert fm_refine(ours, max_passes=2).capacity == ours.capacity
