"""The paper's explicit cuts (Section 1.4, Lemma 3.2/3.3 upper bounds)."""

import pytest

from repro.cuts import ccc_dimension_cut, column_prefix_cut, level_split_cut
from repro.topology import butterfly, cube_connected_cycles, wrapped_butterfly


class TestColumnCut:
    @pytest.mark.parametrize("n", [4, 8, 16, 64, 256])
    def test_bn_capacity_n(self, n):
        cut = column_prefix_cut(butterfly(n))
        assert cut.capacity == n
        assert cut.is_bisection()

    @pytest.mark.parametrize("n", [4, 8, 16, 64, 256])
    def test_wn_capacity_n(self, n):
        cut = column_prefix_cut(wrapped_butterfly(n))
        assert cut.capacity == n
        assert cut.is_bisection()

    def test_optimal_on_w8(self, w8):
        """On Wn the folklore cut IS optimal (Lemma 3.2)."""
        from repro.cuts import layered_cut_profile

        assert column_prefix_cut(w8).capacity == layered_cut_profile(
            w8, with_witnesses=False
        ).bisection_width()

    def test_not_optimal_asymptotically(self):
        """Theorem 2.20: the pullback beats the column cut for large n."""
        from repro.cuts import best_plan

        assert best_plan(1 << 12).capacity < column_prefix_cut(butterfly(1 << 12)).capacity


class TestCCCDimensionCut:
    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_capacity_half_n(self, n):
        cut = ccc_dimension_cut(cube_connected_cycles(n))
        assert cut.capacity == n // 2
        assert cut.is_bisection()

    def test_optimal_on_ccc8(self, ccc8):
        from repro.cuts import layered_cut_profile

        assert ccc_dimension_cut(ccc8).capacity == layered_cut_profile(
            ccc8, with_witnesses=False
        ).bisection_width()


class TestLevelSplit:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_capacity_2n(self, b8, t):
        assert level_split_cut(b8, t).capacity == 16

    def test_never_a_good_bisection(self, b8):
        """Horizontal cuts cost 2n — double the folklore cut."""
        assert level_split_cut(b8, 2).capacity == 2 * column_prefix_cut(b8).capacity

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            level_split_cut(w8, 1)

    def test_rejects_bad_level(self, b8):
        with pytest.raises(ValueError):
            level_split_cut(b8, 0)
