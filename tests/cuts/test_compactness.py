"""Compact sets (Lemmas 2.6-2.9) as falsifiable properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import (
    Cut,
    best_collapse,
    check_compact_for_cut,
    collapse_above_inputs,
    collapse_onto_side,
    component_collapse,
)
from repro.topology import butterfly, level_range_components, wrapped_butterfly


def random_cut(bf, seed):
    rng = np.random.default_rng(seed)
    return Cut(bf, rng.random(bf.num_nodes) < rng.random())


class TestCollapsePrimitives:
    def test_collapse_onto_side(self, b8):
        cut = Cut.from_node_set(b8, [0, 1])
        col = collapse_onto_side(cut, np.array([5, 6]), True)
        assert col.count_in([5, 6]) == 2
        assert col.count_in([0, 1]) == 2  # untouched

    def test_best_collapse_picks_cheaper(self, b8, rng):
        cut = random_cut(b8, 7)
        u = np.arange(8, 32)
        best = best_collapse(cut, u)
        s = collapse_onto_side(cut, u, True)
        t = collapse_onto_side(cut, u, False)
        assert best.capacity == min(s.capacity, t.capacity)


class TestLemma28:
    """U = all non-input levels is compact in Bn."""

    @given(st.integers(0, 2000))
    @settings(max_examples=150, deadline=None)
    def test_collapse_never_increases_b8(self, seed):
        bf = butterfly(8)
        cut = random_cut(bf, seed)
        assert collapse_above_inputs(cut).capacity <= cut.capacity

    @given(st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_collapse_never_increases_b16(self, seed):
        bf = butterfly(16)
        cut = random_cut(bf, seed)
        assert collapse_above_inputs(cut).capacity <= cut.capacity

    def test_collapsed_cut_unifies_u(self, b8):
        cut = random_cut(b8, 3)
        col = collapse_above_inputs(cut)
        u = np.arange(8, 32)
        inside = col.count_in(u)
        assert inside in (0, len(u))

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            collapse_above_inputs(random_cut(w8, 0))


class TestLemma29:
    """Components of Bn[i, log n] are compact in Bn."""

    @given(st.integers(0, 1000), st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_component_collapse_never_increases(self, seed, i):
        bf = butterfly(8)
        cut = random_cut(bf, seed)
        for comp in level_range_components(bf, i, bf.lg):
            assert component_collapse(cut, comp).capacity <= cut.capacity

    def test_requires_output_anchored(self, b8):
        comp = level_range_components(b8, 1, 2)[0]
        with pytest.raises(ValueError):
            component_collapse(random_cut(b8, 0), comp)

    @given(st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_definitional_check(self, seed):
        """check_compact_for_cut exercises the definition directly."""
        bf = butterfly(8)
        cut = random_cut(bf, seed)
        for comp in level_range_components(bf, 2, bf.lg):
            assert check_compact_for_cut(cut, comp.nodes)


class TestNotEverythingIsCompact:
    def test_a_non_compact_set_exists(self, b8):
        """Sanity: a generic set (half of one level) is NOT compact for some
        cut — compactness is a special property, not a triviality."""
        found_violation = False
        u = b8.level(1)[:4]
        for seed in range(200):
            cut = random_cut(b8, seed)
            if not check_compact_for_cut(cut, u):
                found_violation = True
                break
        assert found_violation
