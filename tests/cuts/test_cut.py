"""The Cut abstraction (Sections 1.2, 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import Cut
from repro.topology import butterfly


class TestConstruction:
    def test_from_side_array(self, b8):
        side = np.zeros(32, dtype=bool)
        side[:16] = True
        cut = Cut(b8, side)
        assert cut.s_size == 16 and cut.complement_size == 16

    def test_side_is_read_only(self, b8):
        cut = Cut(b8, np.zeros(32, dtype=bool))
        with pytest.raises(ValueError):
            cut.side[0] = True  # repro-lint: disable=RL005 -- asserts the write is rejected

    def test_shape_check(self, b8):
        with pytest.raises(ValueError):
            Cut(b8, np.zeros(5, dtype=bool))

    def test_from_node_set(self, b8):
        cut = Cut.from_node_set(b8, [0, 1, 2])
        assert cut.s_size == 3
        assert sorted(cut.s_nodes.tolist()) == [0, 1, 2]

    def test_from_node_set_range_check(self, b8):
        with pytest.raises(ValueError):
            Cut.from_node_set(b8, [99])

    def test_from_labels(self, b8):
        cut = Cut.from_labels(b8, [(0, 0), (1, 0)])
        assert cut.s_size == 2


class TestCapacity:
    def test_column_cut_capacity(self, b8):
        """The folklore cut: columns starting with 0 — capacity n."""
        cols = np.arange(32) % 8
        cut = Cut(b8, cols < 4)
        assert cut.capacity == 8

    def test_empty_and_full_cuts(self, b8):
        assert Cut(b8, np.zeros(32, dtype=bool)).capacity == 0
        assert Cut(b8, np.ones(32, dtype=bool)).capacity == 0

    def test_complement_preserves_capacity(self, b8, rng):
        cut = Cut(b8, rng.random(32) < 0.4)
        assert cut.complement().capacity == cut.capacity
        assert cut.complement().s_size == cut.complement_size

    def test_cut_edges_match_capacity(self, b8, rng):
        cut = Cut(b8, rng.random(32) < 0.5)
        assert len(cut.cut_edges()) == cut.capacity


class TestBisection:
    def test_is_bisection(self, b8):
        side = np.zeros(32, dtype=bool)
        side[:16] = True
        assert Cut(b8, side).is_bisection()
        side[16] = True
        assert not Cut(b8, side).is_bisection()

    def test_odd_bisection(self):
        from repro.topology import Network

        net = Network(range(5), [(0, 1)])
        side = np.zeros(5, dtype=bool)
        side[:3] = True
        assert Cut(net, side).is_bisection()

    def test_bisects_subset(self, b8):
        cut = Cut.from_node_set(b8, [0, 1, 8, 9])
        assert cut.bisects([0, 1, 2, 3])          # 2 vs 2
        assert cut.bisects([0, 1, 2])             # 2 vs 1, difference 1
        assert not cut.bisects([0, 1, 8, 2])      # 3 vs 1, difference 2

    def test_bisects_definition(self, b8):
        cut = Cut.from_node_set(b8, [0, 1])
        assert cut.bisects([0, 1, 2, 3])          # 2 vs 2
        assert cut.bisects([0, 1, 2])             # 2 vs 1
        assert not cut.bisects([0, 1, 2, 3, 4, 5])  # 2 vs 4

    def test_count_in(self, b8):
        cut = Cut.from_node_set(b8, [0, 5, 9])
        assert cut.count_in([0, 1, 9]) == 2


class TestMoves:
    def test_with_moved(self, b8):
        cut = Cut.from_node_set(b8, [0])
        moved = cut.with_moved([1, 2], to_s=True)
        assert moved.s_size == 3
        assert cut.s_size == 1  # original untouched

    @given(st.integers(0, 31), st.data())
    @settings(max_examples=40, deadline=None)
    def test_move_gains_predict_capacity_change(self, v, data):
        """Moving node v changes capacity by exactly -gains[v]."""
        bf = butterfly(8)
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        cut = Cut(bf, rng.random(32) < 0.5)
        gains = cut.move_gains()
        moved = cut.with_moved([v], to_s=not cut.side[v])
        assert moved.capacity == cut.capacity - gains[v]
