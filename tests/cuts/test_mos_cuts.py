"""Lemmas 2.17-2.19: the mesh-of-stars M2-bisection analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import (
    build_mos_cut,
    f_min_on_grid,
    f_minimum,
    f_xy,
    layered_u_bisection_width,
    mos_m2_bisection_width,
    mos_m2_capacity,
    optimal_mos_cut_spec,
)
from repro.topology import mesh_of_stars


class TestF:
    def test_lemma_218_minimum(self):
        x, y, fmin = f_minimum()
        assert math.isclose(x, math.sqrt(0.5))
        assert math.isclose(fmin, math.sqrt(2) - 1)
        assert math.isclose(f_xy(x, y), fmin)

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=200)
    def test_minimum_is_global_on_domain(self, x, y):
        if x + y >= 1:
            assert f_xy(x, y) >= math.sqrt(2) - 1 - 1e-12

    def test_boundary_values(self):
        assert math.isclose(f_xy(1, 1), 1.0)  # cut everything twice minus min
        assert math.isclose(f_xy(0.5, 0.5), 0.5)
        assert math.isclose(f_xy(1, 0), 1.0)


class TestCapacityFormula:
    def test_against_brute_force_small(self):
        """The closed form versus exhaustive search on MOS_{2,2}, MOS_{3,3}."""
        for j in (2, 3):
            mos = mesh_of_stars(j, j)
            exact = layered_u_bisection_width(mos, mos.m2())
            assert exact == mos_m2_bisection_width(j)

    def test_against_independent_side_optimization(self):
        """For fixed M2 assignments the outer sides optimize independently;
        cross-check j = 4 exactly this way."""
        from itertools import combinations

        j = 4
        best = None
        mids = [(a, b) for a in range(j) for b in range(j)]
        for in_s in combinations(range(j * j), j * j // 2):
            sset = set(in_s)
            cap = 0
            for a in range(j):  # M1 node a: min over its two placements
                row = [j * 0 + (a * j + b in sset) for b in range(j)]
                inside = sum(row)
                cap += min(inside, j - inside)
            for b in range(j):
                col = [(a * j + b in sset) for a in range(j)]
                inside = sum(col)
                cap += min(inside, j - inside)
            # Each mixed mid contributes 1; counted via the outer mins:
            # min(inside, j - inside) counts edges to the minority side.
            if best is None or cap < best:
                best = cap
        assert best == mos_m2_bisection_width(j)

    def test_capacity_shape_checks(self):
        with pytest.raises(ValueError):
            mos_m2_capacity(4, 5, 0, 8)
        with pytest.raises(ValueError):
            mos_m2_capacity(4, 0, 0, 17)

    @given(st.integers(2, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_explicit_construction(self, j, data):
        """Any (a, b, h) shape's formula value is achieved by a real cut."""
        a = data.draw(st.integers(0, j))
        b = data.draw(st.integers(0, j))
        h = data.draw(st.sampled_from([j * j // 2, (j * j + 1) // 2]))
        cap = mos_m2_capacity(j, a, b, h)
        mos = mesh_of_stars(j, j)
        side = np.zeros(mos.num_nodes, dtype=bool)
        side[[mos.m1_node(s) for s in range(a)]] = True
        side[[mos.m3_node(p) for p in range(b)]] = True
        aa, mixed, bb = [], [], []
        for s in range(j):
            for p in range(j):
                cls = (s < a) + (p < b)
                node = mos.m2_node(s, p)
                (bb if cls == 0 else mixed if cls == 1 else aa).append(node)
        take = min(len(aa), h)
        side[aa[:take]] = True
        rem = h - take
        take2 = min(len(mixed), rem)
        side[mixed[:take2]] = True
        side[bb[: rem - take2]] = True
        from repro.cuts import Cut

        assert Cut(mos, side).capacity == cap


class TestLemma217:
    @pytest.mark.parametrize("j", [2, 4, 6])
    def test_formula_equals_f(self, j):
        """For even j the grid minimum equals min f(a/j, b/j) j^2."""
        for a in range(j + 1):
            for b in range(j + 1):
                if a / j + b / j < 1:
                    continue
                cap = min(
                    mos_m2_capacity(j, a, b, j * j // 2),
                    mos_m2_capacity(j, a, b, (j * j + 1) // 2),
                )
                assert math.isclose(cap, f_xy(a / j, b / j) * j * j)


class TestLemma219:
    def test_strictly_above_limit_even_j(self):
        """The lemma's strict bound, at its stated parity (even j)."""
        lim = math.sqrt(2) - 1
        for j in (2, 4, 8, 16, 32, 64, 128, 200, 1024):
            assert mos_m2_bisection_width(j) / j**2 > lim

    def test_odd_j_can_dip_below(self):
        """Why the paper says 'positive, even, and integral': at j = 7 the
        exact value is 20/49 < sqrt(2) - 1 — an uneven M2 split admits a
        cheaper cut, so the strict bound genuinely needs even j."""
        lim = math.sqrt(2) - 1
        assert mos_m2_bisection_width(7) == 20
        assert 20 / 49 < lim
        # Most odd j still sit above; 7 is the counterexample in range.
        assert mos_m2_bisection_width(3) / 9 > lim
        assert mos_m2_bisection_width(9) / 81 > lim

    def test_convergence(self):
        lim = math.sqrt(2) - 1
        assert f_min_on_grid(256) - lim < 5e-3
        assert f_min_on_grid(1024) - lim < 1e-3

    def test_specs_build(self):
        for j in (2, 3, 4, 5, 8, 12):
            spec = optimal_mos_cut_spec(j)
            cut = build_mos_cut(spec)
            assert cut.capacity == mos_m2_bisection_width(j)
            assert cut.bisects(mesh_of_stars(j, j).m2())

    def test_spec_mismatched_network(self):
        spec = optimal_mos_cut_spec(3)
        with pytest.raises(ValueError):
            build_mos_cut(spec, mesh_of_stars(4, 4))
