"""Amenable sets (Lemmas 2.14-2.15)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import Cut, check_amenable_for_cut, mixed_orientation, rearranged
from repro.topology import butterfly, level_range_components


def mixed_cut(bf, comp, comp_in_s=True, reverse=False):
    """A cut making `comp` a mixed component (Lemma 2.15's hypothesis)."""
    side = np.zeros(bf.num_nodes, dtype=bool)
    if not reverse:
        for i in range(comp.lo):
            side[bf.level(i)] = True      # input side in S
    else:
        for i in range(comp.hi + 1, bf.lg + 1):
            side[bf.level(i)] = True      # output side in S
    side[comp.nodes] = comp_in_s
    return Cut(bf, side)


class TestOrientation:
    def test_forward_orientation(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = mixed_cut(b16, comp)
        assert mixed_orientation(cut, comp) == +1

    def test_reverse_orientation(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = mixed_cut(b16, comp, reverse=True)
        assert mixed_orientation(cut, comp) == -1

    def test_unmixed_returns_zero(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = Cut(b16, np.zeros(b16.num_nodes, dtype=bool))
        assert mixed_orientation(cut, comp) == 0

    def test_component_touching_io_rejected(self, b16):
        comp = level_range_components(b16, 0, 2)[0]
        cut = Cut(b16, np.zeros(b16.num_nodes, dtype=bool))
        with pytest.raises(ValueError):
            mixed_orientation(cut, comp)


class TestLemma215:
    @given(st.booleans(), st.booleans(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_capacity_invariant_under_threshold(self, comp_in_s, reverse, data):
        """Every k from 0 to |U| is achievable at unchanged capacity."""
        bf = butterfly(16)
        comp = level_range_components(bf, 1, 3)[0]
        cut = mixed_cut(bf, comp, comp_in_s=comp_in_s, reverse=reverse)
        k = data.draw(st.integers(0, comp.num_nodes))
        re = rearranged(cut, comp, k)
        assert re.capacity == cut.capacity
        assert re.count_in(comp.nodes) == k

    def test_check_amenable_full_sweep(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = mixed_cut(b16, comp)
        assert check_amenable_for_cut(cut, comp)

    def test_rearranged_only_touches_component(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = mixed_cut(b16, comp)
        re = rearranged(cut, comp, 5)
        outside = np.ones(b16.num_nodes, dtype=bool)
        outside[comp.nodes] = False
        assert np.array_equal(re.side[outside], cut.side[outside])

    def test_non_mixed_rejected(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = Cut(b16, np.zeros(b16.num_nodes, dtype=bool))
        with pytest.raises(ValueError, match="not mixed"):
            rearranged(cut, comp, 3)

    def test_k_out_of_range(self, b16):
        comp = level_range_components(b16, 1, 3)[0]
        cut = mixed_cut(b16, comp)
        with pytest.raises(ValueError):
            rearranged(cut, comp, comp.num_nodes + 1)

    def test_b32_middle_fiber(self):
        """The configuration the bisection builder actually uses."""
        bf = butterfly(32)
        comp = level_range_components(bf, 2, 3)[0]
        cut = mixed_cut(bf, comp)
        assert check_amenable_for_cut(
            cut, comp, ks=np.arange(0, comp.num_nodes + 1, 3)
        )
