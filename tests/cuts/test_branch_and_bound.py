"""Branch-and-bound exact bisection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuts import bb_bisection_width, bb_min_bisection, cut_profile
from repro.topology import (
    Network,
    butterfly,
    de_bruijn,
    hypercube,
    hypercube_bisection_width,
    shuffle_exchange,
    wrapped_butterfly,
)


class TestAgainstEnumeration:
    @pytest.mark.parametrize("make", [
        lambda: butterfly(4),
        lambda: wrapped_butterfly(4),
        lambda: hypercube(4),
        lambda: de_bruijn(4),
        lambda: shuffle_exchange(4),
    ])
    def test_matches_enumeration(self, make):
        net = make()
        assert bb_bisection_width(net) == cut_profile(net).bisection_width()

    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 14))
        edges = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.4
        ]
        if not edges:
            edges = [(0, 1)]
        net = Network(range(n), edges, name="rand")
        assert bb_bisection_width(net) == cut_profile(net).bisection_width()


class TestBeyondEnumeration:
    def test_b8_exact(self, b8):
        cut = bb_min_bisection(b8)
        assert cut.capacity == 8
        assert cut.is_bisection()

    @pytest.mark.slow
    def test_hypercube_q5(self):
        """32 nodes, out of reach of plain enumeration."""
        assert bb_bisection_width(hypercube(5)) == hypercube_bisection_width(5)

    def test_witness_is_certified(self, b4):
        cut = bb_min_bisection(b4)
        assert cut.capacity == 4
        assert cut.s_size in (6, 6)


class TestGuards:
    def test_node_limit(self):
        with pytest.raises(ValueError, match="limited"):
            bb_min_bisection(hypercube(6))

    def test_raise_limit(self):
        # Explicitly raising the limit is allowed (and exact, just slow).
        cut = bb_min_bisection(hypercube(4), node_limit=64)
        assert cut.capacity == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bb_min_bisection(Network([], []))

    def test_odd_sizes(self):
        net = Network(range(5), [(i, (i + 1) % 5) for i in range(5)])
        cut = bb_min_bisection(net)
        assert cut.capacity == 2
        assert {cut.s_size, cut.complement_size} == {2, 3}
