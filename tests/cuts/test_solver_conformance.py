"""Cross-solver conformance on every exactly-solvable small instance.

Three independent exact solvers implement the same quantity: exhaustive
enumeration (:func:`repro.cuts.cut_profile`), the layered min-plus DP
(:func:`repro.cuts.layered_cut_profile`) and branch and bound
(:func:`repro.cuts.bb_min_bisection`).  On every butterfly, wrapped
butterfly and CCC instance with at most 16 nodes they must agree on the
bisection width and each must produce a witness the others validate —
with the symmetry-aware cache enabled and disabled, so a cache hit can
never change an answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fallback import solve_with_fallback
from repro.cuts import (
    Cut,
    bb_min_bisection,
    cut_profile,
    layered_cut_profile,
)
from repro.obs import collecting
from repro.perf import SolverCache, cached_cut_profile
from repro.topology import butterfly, cube_connected_cycles, wrapped_butterfly

#: Every supported family instance with <= 16 nodes.
INSTANCES = [
    pytest.param(lambda: butterfly(2), id="B2-4n"),
    pytest.param(lambda: butterfly(4), id="B4-12n"),
    pytest.param(lambda: wrapped_butterfly(4), id="W4-8n"),
    pytest.param(lambda: cube_connected_cycles(4), id="CCC4-8n"),
]


@pytest.fixture(params=INSTANCES)
def instance(request):
    net = request.param()
    assert net.num_nodes <= 16
    return net


def _witnesses(net):
    """One optimal bisection per solver."""
    prof = cut_profile(net)
    n = net.num_nodes
    c = n // 2 if prof.values[n // 2] <= prof.values[(n + 1) // 2] else (n + 1) // 2
    return {
        "enumerate": prof.witness_cut(c),
        "layered_dp": layered_cut_profile(net).min_bisection(),
        "branch_and_bound": bb_min_bisection(net),
    }


class TestAgreement:
    def test_three_solvers_one_width(self, instance):
        width = cut_profile(instance).bisection_width()
        assert layered_cut_profile(instance).min_bisection().capacity == width
        assert bb_min_bisection(instance).capacity == width

    def test_witnesses_are_mutually_valid(self, instance):
        """Each solver's witness checks out against the shared width."""
        width = cut_profile(instance).bisection_width()
        for solver, cut in _witnesses(instance).items():
            assert cut.is_bisection(), f"{solver} witness is not a bisection"
            assert cut.capacity == width, f"{solver} witness capacity drifts"
            # Re-derive the capacity from the raw side array so the check
            # does not trust the Cut object the solver handed back.
            assert instance.cut_capacity(cut.side) == width


class TestCacheTransparency:
    def test_cached_equals_uncached(self, instance, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        plain = cut_profile(instance)
        with collecting() as col:
            cold = cached_cut_profile(instance, cache=cache)
            warm = cached_cut_profile(instance, cache=cache)
        assert col.counters["perf.cache.hit"] == 1
        for prof in (cold, warm):
            np.testing.assert_array_equal(prof.values, plain.values)
            np.testing.assert_array_equal(prof.witnesses, plain.witnesses)

    def test_fallback_tier0_preserves_the_certificate(self, instance, tmp_path):
        cache = SolverCache(tmp_path / "cache")
        baseline = solve_with_fallback(instance)
        assert baseline.is_exact
        cold = solve_with_fallback(instance, cache=cache)
        with collecting() as col:
            warm = solve_with_fallback(instance, cache=cache)
        assert cold.value == warm.value == baseline.value
        assert col.counters.get("perf.cache.hit", 0) >= 1
        assert warm.witness is not None
        assert isinstance(warm.witness, Cut)
        assert warm.witness.is_bisection()
        assert warm.witness.capacity == baseline.value

    def test_warm_start_seeds_branch_and_bound(self, instance):
        best = bb_min_bisection(instance)
        seeded = bb_min_bisection(instance, warm_start=best)
        assert seeded.capacity == best.capacity
