"""Finite-size scaling toolkit."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ScalingFit,
    butterfly_construction_series,
    check_monotone_envelope,
    estimate_lemma_219_constant,
    estimate_theorem_220_constant,
    fit_inverse_model,
    mos_ratio_series,
)


class TestFit:
    def test_recovers_exact_model(self):
        xs = np.array([1.0, 2.0, 4.0, 8.0])
        ys = 0.5 + 3.0 / xs
        fit = fit_inverse_model(xs, ys)
        assert fit.limit == pytest.approx(0.5)
        assert fit.slope == pytest.approx(3.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)

    def test_predict(self):
        fit = ScalingFit(limit=1.0, slope=2.0, residual=0.0)
        assert fit.predict(np.array([2.0]))[0] == pytest.approx(2.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_inverse_model([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_inverse_model([0.0, 1.0], [1.0, 1.0])

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        xs = np.linspace(10, 100, 20)
        ys = 0.83 + 5.0 / xs + rng.normal(0, 1e-3, 20)
        fit = fit_inverse_model(xs, ys)
        assert fit.limit == pytest.approx(0.83, abs=0.01)


class TestEnvelope:
    def test_good_series(self):
        assert check_monotone_envelope([0.9, 0.87, 0.85], floor=0.83)

    def test_floor_violation(self):
        assert not check_monotone_envelope([0.9, 0.82], floor=0.83)

    def test_monotonicity_violation(self):
        assert not check_monotone_envelope([0.85, 0.9], floor=0.8)

    def test_tolerated_wiggle(self):
        assert check_monotone_envelope([0.85, 0.86, 0.84], floor=0.8, tolerance=0.02)


class TestPaperConstants:
    def test_theorem_220_constant_from_data(self):
        """Extrapolating the construction series recovers 2(sqrt2 - 1)."""
        fit = estimate_theorem_220_constant()
        assert fit.limit == pytest.approx(2 * (math.sqrt(2) - 1), abs=0.01)

    def test_lemma_219_constant_from_data(self):
        fit = estimate_lemma_219_constant()
        assert fit.limit == pytest.approx(math.sqrt(2) - 1, abs=0.005)

    def test_construction_series_envelope(self):
        xs, ys = butterfly_construction_series((100, 200, 400, 800))
        assert check_monotone_envelope(
            ys, floor=2 * (math.sqrt(2) - 1), tolerance=0.005
        )

    def test_mos_series_strictly_above(self):
        xs, ys = mos_ratio_series((8, 16, 32, 64, 128))
        assert (ys > math.sqrt(2) - 1).all()
