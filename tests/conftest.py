"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import butterfly, wrapped_butterfly, cube_connected_cycles


@pytest.fixture(scope="session")
def b4():
    return butterfly(4)


@pytest.fixture(scope="session")
def b8():
    return butterfly(8)


@pytest.fixture(scope="session")
def b16():
    return butterfly(16)


@pytest.fixture(scope="session")
def w4():
    return wrapped_butterfly(4)


@pytest.fixture(scope="session")
def w8():
    return wrapped_butterfly(8)


@pytest.fixture(scope="session")
def w16():
    return wrapped_butterfly(16)


@pytest.fixture(scope="session")
def ccc8():
    return cube_connected_cycles(8)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
