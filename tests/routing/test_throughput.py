"""Routing time versus the bisection bound (Section 1.2)."""

import pytest

from repro.routing import (
    bisection_time_bound,
    permutation_experiment,
    random_destinations_experiment,
)
from repro.topology import butterfly, wrapped_butterfly


class TestBound:
    def test_formula(self):
        assert bisection_time_bound(32, 8) == pytest.approx(1.0)
        assert bisection_time_bound(100, 5) == pytest.approx(5.0)

    def test_smaller_bisection_larger_bound(self):
        assert bisection_time_bound(64, 4) > bisection_time_bound(64, 8)


class TestExperiments:
    def test_random_destinations_b8(self, b8):
        rep = random_destinations_experiment(b8, bisection_width=8, seed=1)
        assert rep.result.delivered == rep.num_packets
        assert rep.bound == pytest.approx(1.0)
        assert rep.ratio >= 1.0  # routing can never beat the bound scale

    def test_permutation_w8(self, w8):
        rep = permutation_experiment(w8, bisection_width=8, seed=2)
        assert rep.result.delivered == rep.num_packets
        assert rep.result.steps >= 1

    def test_deterministic(self, b8):
        r1 = random_destinations_experiment(b8, 8, seed=7)
        r2 = random_destinations_experiment(b8, 8, seed=7)
        assert r1.result == r2.result

    def test_steps_at_least_max_distance(self, b8):
        """Makespan is at least the longest individual path."""
        rep = permutation_experiment(b8, 8, seed=3)
        assert rep.result.steps * rep.num_packets >= rep.result.total_hops

    def test_bigger_network_longer(self):
        small = permutation_experiment(butterfly(8), 8, seed=0)
        large = permutation_experiment(butterfly(32), 32, seed=0)
        assert large.result.steps >= small.result.steps
