"""Monotonic and canonical paths (Lemma 2.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import (
    canonical_path,
    column_path,
    count_monotonic_paths,
    monotonic_path,
    monotonic_path_wrapped,
)
from repro.topology import butterfly, wrapped_butterfly


def assert_walk(bf, path):
    for a, b in zip(path[:-1], path[1:]):
        assert bf.has_edge(int(a), int(b)), (a, b)


class TestLemma23:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_uniqueness_all_pairs(self, n):
        bf = butterfly(n)
        for s in range(n):
            for d in range(n):
                assert count_monotonic_paths(bf, s, d) == 1

    def test_path_is_the_greedy_route(self, b8):
        p = monotonic_path(b8, 0b000, 0b101)
        cols = (p % 8).tolist()
        assert cols == [0b000, 0b100, 0b100, 0b101]

    def test_path_valid_walk(self, b8):
        for s in range(8):
            for d in range(8):
                p = monotonic_path(b8, s, d)
                assert_walk(b8, p)
                assert p[0] == b8.node(s, 0)
                assert p[-1] == b8.node(d, b8.lg)

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            monotonic_path(w8, 0, 1)


class TestWrappedGreedy:
    @given(st.integers(0, 7), st.integers(0, 2), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_wraps_once_and_fixes_bits(self, src, lvl, dst):
        w8 = wrapped_butterfly(8)
        p = monotonic_path_wrapped(w8, src, lvl, dst)
        assert len(p) == w8.lg + 1
        assert_walk(w8, p)
        assert p[0] == w8.node(src, lvl)
        assert p[-1] == w8.node(dst, lvl)


class TestColumnPath:
    def test_bn_descending(self, b8):
        p = column_path(b8, 3, 3, 0)
        assert (p % 8 == 3).all()
        assert (p // 8).tolist() == [3, 2, 1, 0]
        assert_walk(b8, p)

    def test_bn_single_node(self, b8):
        p = column_path(b8, 3, 2, 2)
        assert p.tolist() == [b8.node(3, 2)]

    def test_wn_wraps_shortest(self, w8):
        p = column_path(w8, 5, 0, 2)
        assert_walk(w8, p)
        assert p[0] == w8.node(5, 0) and p[-1] == w8.node(5, 2)


class TestCanonicalPath:
    @given(st.booleans(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_connects_any_pair(self, wrap, data):
        bf = wrapped_butterfly(8) if wrap else butterfly(8)
        src = data.draw(st.integers(0, bf.num_nodes - 1))
        dst = data.draw(st.integers(0, bf.num_nodes - 1))
        p = canonical_path(bf, src, dst)
        assert p[0] == src and p[-1] == dst
        assert_walk(bf, p)

    def test_length_bound_bn(self, b8):
        for src in range(b8.num_nodes):
            for dst in range(b8.num_nodes):
                p = canonical_path(b8, src, dst)
                assert len(p) - 1 <= 3 * b8.lg

    def test_length_bound_wn(self, w8):
        for src in range(w8.num_nodes):
            for dst in range(w8.num_nodes):
                p = canonical_path(w8, src, dst)
                assert len(p) - 1 <= 3 * w8.lg - 2  # the Theorem 4.3 dilation
