"""The looping algorithm (Beneš rearrangeability)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import route_permutation, verify_edge_disjoint
from repro.topology import benes


class TestRoutes:
    @given(st.integers(0, 4), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_random_permutations_edge_disjoint(self, m, seed):
        bn = benes(m)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(bn.num_ports)
        paths = route_permutation(bn, perm)
        assert verify_edge_disjoint(bn, paths)

    @given(st.integers(0, 4), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_endpoints_honor_permutation(self, m, seed):
        bn = benes(m)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(bn.num_ports)
        paths = route_permutation(bn, perm)
        for p, path in enumerate(paths):
            assert path[0] == bn.node(p // 2, 0)
            assert path[-1] == bn.node(int(perm[p]) // 2, 2 * m)
            assert len(path) == 2 * m + 1

    def test_identity_permutation(self):
        bn = benes(3)
        paths = route_permutation(bn, np.arange(bn.num_ports))
        assert verify_edge_disjoint(bn, paths)

    def test_reversal_permutation(self):
        bn = benes(3)
        paths = route_permutation(bn, np.arange(bn.num_ports)[::-1])
        assert verify_edge_disjoint(bn, paths)

    def test_paths_are_walks(self):
        bn = benes(2)
        rng = np.random.default_rng(5)
        for path in route_permutation(bn, rng.permutation(bn.num_ports)):
            for a, b in zip(path[:-1], path[1:]):
                assert bn.has_edge(int(a), int(b))


class TestGuards:
    def test_rejects_non_permutation(self):
        bn = benes(2)
        with pytest.raises(ValueError):
            route_permutation(bn, np.zeros(bn.num_ports, dtype=int))

    def test_rejects_wrong_length(self):
        bn = benes(2)
        with pytest.raises(ValueError):
            route_permutation(bn, np.arange(4))

    def test_verify_catches_shared_edge(self):
        bn = benes(1)
        path = np.array([bn.node(0, 0), bn.node(0, 1), bn.node(0, 2)])
        assert not verify_edge_disjoint(bn, [path, path])

    def test_verify_catches_non_edges(self):
        bn = benes(1)
        bad = np.array([bn.node(0, 0), bn.node(1, 2)])
        assert not verify_edge_disjoint(bn, [bad])
