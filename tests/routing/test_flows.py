"""Max-flow / Menger certification (Dinic from scratch)."""

import numpy as np
import pytest

from repro.routing.flows import (
    extract_paths,
    max_edge_disjoint_paths,
    min_separating_cut_size,
)
from repro.topology import Network, butterfly, wrapped_butterfly


def path_graph(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


class TestBasics:
    def test_path_has_one_path(self):
        net = path_graph(5)
        assert max_edge_disjoint_paths(net, [0], [4]) == 1

    def test_cycle_has_two(self):
        net = Network(range(6), [(i, (i + 1) % 6) for i in range(6)])
        assert max_edge_disjoint_paths(net, [0], [3]) == 2

    def test_complete_graph(self):
        from repro.topology import complete_graph

        k5 = complete_graph(5)
        # Menger: min cut separating two nodes of K5 is 4.
        assert max_edge_disjoint_paths(k5, [0], [4]) == 4

    def test_multi_source_sink(self):
        net = path_graph(6)
        assert max_edge_disjoint_paths(net, [0, 1], [4, 5]) == 1

    def test_overlapping_sets_rejected(self):
        net = path_graph(3)
        with pytest.raises(ValueError):
            max_edge_disjoint_paths(net, [0, 1], [1, 2])

    def test_parallel_edges_add_capacity(self):
        net = Network(range(2), [(0, 1), (0, 1)])
        assert max_edge_disjoint_paths(net, [0], [1]) == 2


class TestMengerOnButterflies:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_inputs_to_outputs_is_2n(self, n):
        """2n edge-disjoint paths link inputs to outputs: the min separating
        cut is a full level boundary (= the level-split cut's capacity)."""
        bf = butterfly(n)
        assert max_edge_disjoint_paths(bf, bf.inputs(), bf.outputs()) == 2 * n

    def test_io_flow_matches_level_split_cut(self, b8):
        from repro.cuts import level_split_cut

        flow = max_edge_disjoint_paths(b8, b8.inputs(), b8.outputs())
        assert flow == level_split_cut(b8, 1).capacity

    def test_single_input_degree_limited(self, b8):
        assert max_edge_disjoint_paths(b8, [int(b8.node(0, 0))], b8.outputs()) == 2

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_half_inputs_separation_is_n(self, n):
        """Lemma 3.1 via Menger: separating the MSB-0 inputs from the MSB-1
        inputs needs n edges — any such cut bisects the inputs, so the flow
        can be no less than BW(Bn, L0) = n, and the column cut shows it is
        no more."""
        bf = butterfly(n)
        inputs = bf.inputs()
        cols = bf.column_of(inputs)
        msb = 1 << (bf.lg - 1)
        left = inputs[(cols & msb) == 0]
        right = inputs[(cols & msb) != 0]
        assert max_edge_disjoint_paths(bf, left, right) == n

    def test_half_inputs_flow_matches_exact_dp(self, b8):
        """Cross-validate the flow value against the exact U-bisection DP."""
        from repro.cuts import layered_u_bisection_width

        inputs = b8.inputs()
        msb = 4
        left = inputs[(b8.column_of(inputs) & msb) == 0]
        right = inputs[(b8.column_of(inputs) & msb) != 0]
        flow = max_edge_disjoint_paths(b8, left, right)
        assert flow >= layered_u_bisection_width(b8, inputs)

    def test_mixed_component_cover(self, b16):
        """Lemma 2.15's path system: the component's boundary supports
        2^{d+1} edge-disjoint top-to-bottom paths through U ∪ N(U)."""
        from repro.topology import level_range_components

        comp = level_range_components(b16, 1, 3)[0]
        region = np.unique(np.concatenate([
            comp.nodes, b16.neighborhood(comp.nodes)
        ]))
        sub = b16.subgraph(region)
        tops = [i for i, lab in enumerate(sub.labels) if lab[1] == 0]
        bots = [i for i, lab in enumerate(sub.labels) if lab[1] == 4]
        flow = max_edge_disjoint_paths(sub, tops, bots)
        assert flow == 8  # n'/2 with n' = 16 inputs in the proof's notation


class TestExtraction:
    def test_paths_are_edge_disjoint_walks(self, b8):
        paths = extract_paths(b8, b8.inputs(), b8.outputs())
        assert len(paths) == 16  # 2n of them
        seen = set()
        for p in paths:
            for a, b in zip(p[:-1], p[1:]):
                assert b8.has_edge(int(a), int(b))
                key = (min(int(a), int(b)), max(int(a), int(b)))
                assert key not in seen
                seen.add(key)

    def test_path_endpoints(self, b8):
        ins = set(b8.inputs().tolist())
        outs = set(b8.outputs().tolist())
        for p in extract_paths(b8, b8.inputs(), b8.outputs()):
            assert int(p[0]) in ins and int(p[-1]) in outs

    def test_wrapped_butterfly_flow(self, w8):
        paths = extract_paths(w8, w8.level(0), w8.level(1))
        assert len(paths) == max_edge_disjoint_paths(w8, w8.level(0), w8.level(1))
