"""The store-and-forward packet simulator (Section 1.2's model)."""

import numpy as np
import pytest

from repro.routing import PacketSimulator
from repro.topology import Network, butterfly


def line(n):
    return Network(range(n), [(i, i + 1) for i in range(n - 1)], name=f"P{n}")


class TestBasics:
    def test_single_packet_takes_path_length(self):
        net = line(5)
        sim = PacketSimulator(net)
        res = sim.run([np.arange(5)])
        assert res.steps == 4
        assert res.delivered == 1
        assert res.total_hops == 4

    def test_empty_paths_deliver_instantly(self):
        net = line(3)
        res = PacketSimulator(net).run([np.array([1])])
        assert res.steps == 0

    def test_no_packets(self):
        res = PacketSimulator(line(3)).run([])
        assert res.steps == 0 and res.delivered == 0


class TestContention:
    def test_shared_edge_serializes(self):
        """Two packets over the same directed edge: one waits one step."""
        net = line(3)
        paths = [np.array([0, 1, 2]), np.array([0, 1, 2])]
        res = PacketSimulator(net).run(paths)
        assert res.steps == 3  # second packet finishes one step later
        assert res.max_queue == 2

    def test_opposite_directions_dont_conflict(self):
        """The model is full duplex: one message per direction per step."""
        net = line(2)
        paths = [np.array([0, 1]), np.array([1, 0])]
        res = PacketSimulator(net).run(paths)
        assert res.steps == 1

    def test_deterministic_priority(self):
        net = line(4)
        paths = [np.array([1, 2, 3]), np.array([0, 1, 2, 3])]
        r1 = PacketSimulator(net).run(paths)
        r2 = PacketSimulator(net).run(paths)
        assert r1 == r2

    def test_k_packets_one_edge(self):
        net = line(2)
        paths = [np.array([0, 1]) for _ in range(5)]
        res = PacketSimulator(net).run(paths)
        assert res.steps == 5
        assert res.max_queue == 5


class TestGuards:
    def test_step_limit(self):
        net = line(3)
        with pytest.raises(RuntimeError):
            PacketSimulator(net).run([np.array([0, 1, 2])], max_steps=1)

    def test_butterfly_permutation_completes(self, b8):
        from repro.routing import canonical_path

        rng = np.random.default_rng(0)
        perm = rng.permutation(b8.num_nodes)
        paths = [canonical_path(b8, int(s), int(d)) for s, d in enumerate(perm) if s != d]
        res = PacketSimulator(b8).run(paths)
        assert res.delivered == len(paths)


class TestEdgeCases:
    def test_zero_packet_workload_is_well_formed(self):
        res = PacketSimulator(line(3)).run([])
        assert res.steps == 0
        assert res.delivered == 0
        assert res.total_hops == 0
        assert res.max_queue == 0
        assert res.dropped == 0

    def test_all_packets_same_edge_fifo_is_deterministic(self):
        """Seeded identical workloads replay to identical results."""
        net = line(2)
        runs = []
        for _ in range(2):
            rng = np.random.default_rng(42)
            k = int(rng.integers(3, 7))
            paths = [np.array([0, 1]) for _ in range(k)]
            runs.append(PacketSimulator(net).run(paths))
        assert runs[0] == runs[1]
        assert runs[0].steps == runs[0].delivered  # one crossing per step

    def test_max_queue_counts_waiters_at_the_fan_in(self):
        """Three packets converge on edge (3, 4) on the same step."""
        net = Network(range(5), [(0, 3), (1, 3), (2, 3), (3, 4)], name="fan")
        paths = [np.array([0, 3, 4]), np.array([1, 3, 4]), np.array([2, 3, 4])]
        res = PacketSimulator(net).run(paths)
        assert res.max_queue == 3  # all three queued on (3, 4) at step 2
        assert res.steps == 4  # 1 hop in + 3 serialized crossings


class TestFaultyNetworkRouting:
    def test_missing_edge_drops_the_packet(self):
        net = Network(range(3), [(0, 1)], name="broken")
        res = PacketSimulator(net).run(
            [np.array([0, 1, 2])], drop_on_missing_edge=True
        )
        assert res.delivered == 0
        assert res.dropped == 1

    def test_drop_preserves_the_packet_ledger(self, b8):
        from repro.resilience import FaultInjector
        from repro.routing import canonical_path

        rng = np.random.default_rng(0)
        perm = rng.permutation(b8.num_nodes)
        paths = [
            canonical_path(b8, int(s), int(d))
            for s, d in enumerate(perm) if s != d
        ]
        faulty = FaultInjector(seed=11).drop_edges(b8, rate=0.1)
        res = PacketSimulator(faulty).run(paths, drop_on_missing_edge=True)
        assert res.delivered + res.dropped == len(paths)
        assert res.dropped > 0

    def test_without_the_flag_paths_are_trusted(self):
        """Legacy contract: edges are not validated unless asked to drop."""
        net = Network(range(3), [(0, 1)], name="broken")
        res = PacketSimulator(net).run([np.array([0, 1, 2])])
        assert res.delivered == 1 and res.dropped == 0

    def test_default_dropped_field_is_zero(self):
        res = PacketSimulator(line(3)).run([np.array([0, 1, 2])])
        assert res.dropped == 0 and res.delivered == 1
