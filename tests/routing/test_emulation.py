"""Emulation through embeddings (Section 1.5)."""

import pytest

from repro.embeddings import (
    butterfly_into_butterfly,
    butterfly_into_hypercube,
    wrapped_into_ccc,
)
from repro.routing.emulation import emulate_round, emulation_slowdown


class TestEmulateRound:
    def test_wn_on_ccc(self):
        """CCCn emulates Wn with small constant slowdown (Lemma 3.3's
        embedding: congestion 2, dilation 2)."""
        emb, host = wrapped_into_ccc(8)
        rep = emulate_round(emb)
        assert rep.messages == 2 * emb.guest.num_edges
        assert rep.result.delivered == rep.messages
        assert 1 <= rep.slowdown <= 4 * rep.bound

    def test_bn_on_hypercube_constant(self):
        """The hypercube emulates Bn at constant slowdown."""
        emb, bf, q = butterfly_into_hypercube(8)
        rep = emulate_round(emb)
        assert rep.slowdown <= 12  # small constant, independent of n

    def test_big_butterfly_on_small(self):
        """Lemma 2.10: B_{n 2^j} on Bn costs Θ(2^j) per round."""
        emb, big, host = butterfly_into_butterfly(8, 2, 1)
        rep = emulate_round(emb)
        assert rep.slowdown >= 1 << 2  # congestion 2^j forces at least 4
        assert rep.slowdown <= 8 * (1 << 2)

    def test_slowdown_average(self):
        emb, host = wrapped_into_ccc(8)
        avg = emulation_slowdown(emb, rounds=2)
        assert avg == emulate_round(emb).slowdown  # deterministic model

    def test_rounds_guard(self):
        emb, host = wrapped_into_ccc(8)
        with pytest.raises(ValueError):
            emulation_slowdown(emb, rounds=0)


class TestScaling:
    def test_constant_across_sizes_for_ccc(self):
        """The Wn-on-CCC slowdown stays flat as n grows — the meaning of a
        constant-factor emulation."""
        slow = []
        for n in (8, 16, 32):
            emb, host = wrapped_into_ccc(n)
            slow.append(emulate_round(emb).slowdown)
        assert max(slow) <= min(slow) + 4
