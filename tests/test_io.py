"""Witness serialization."""

import pytest

from repro.core import butterfly_bisection_width
from repro.cuts import Cut, best_plan, build_planned_bisection, plan_bisection
from repro.io import (
    certificate_to_dict,
    cut_from_dict,
    cut_to_dict,
    load_json,
    plan_from_dict,
    plan_to_dict,
    save_json,
)
from repro.topology import butterfly


class TestCutRoundTrip:
    def test_round_trip(self, b8):
        cut = Cut.from_node_set(b8, range(16))
        data = cut_to_dict(cut)
        again = cut_from_dict(b8, data)
        assert again.capacity == cut.capacity
        assert (again.side == cut.side).all()

    def test_capacity_reverified(self, b8):
        cut = Cut.from_node_set(b8, range(16))
        data = cut_to_dict(cut)
        data["capacity"] += 1
        with pytest.raises(ValueError, match="capacity mismatch"):
            cut_from_dict(b8, data)

    def test_size_mismatch(self, b8, b16):
        data = cut_to_dict(Cut.from_node_set(b8, range(4)))
        with pytest.raises(ValueError, match="size mismatch"):
            cut_from_dict(b16, data)

    def test_kind_check(self, b8):
        with pytest.raises(ValueError):
            cut_from_dict(b8, {"kind": "other"})


class TestPlanRoundTrip:
    def test_round_trip_and_rebuild(self):
        plan = plan_bisection(1 << 10, 8, 5, 5)
        data = plan_to_dict(plan)
        again = plan_from_dict(data)
        assert again == plan
        cut = build_planned_bisection(again)
        assert cut.capacity == plan.capacity

    def test_best_plan_serializes(self):
        plan = best_plan(1 << 40)
        again = plan_from_dict(plan_to_dict(plan))
        assert again.capacity_over_n == plan.capacity_over_n

    def test_kind_check(self):
        with pytest.raises(ValueError):
            plan_from_dict({"kind": "cut"})


class TestFiles:
    def test_save_load(self, tmp_path, b8):
        cut = Cut.from_node_set(b8, range(16))
        p = tmp_path / "cut.json"
        save_json(cut_to_dict(cut), p)
        again = cut_from_dict(b8, load_json(p))
        assert again.capacity == cut.capacity

    def test_certificate_export(self):
        cert = butterfly_bisection_width(8)
        data = certificate_to_dict(cert)
        assert data["exact"] and data["upper"] == 8
