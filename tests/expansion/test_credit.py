"""The credit-distribution schemes (Lemmas 4.2, 4.5, 4.8, 4.11, Figure 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.expansion import (
    edge_credit_report,
    node_credit_report,
    single_source_edge_credit,
)
from repro.topology import butterfly, down_tree, wrapped_butterfly


class TestFigure2:
    def test_figure2_fractions(self):
        """Figure 2's worked example: an A-path down the tree whose off-path
        siblings are outside A retains 1/4, 1/8, 1/16 on consecutive cut
        edges and 1/16 on the final leaf-level cut edge."""
        w8 = wrapped_butterfly(8)
        rep = edge_credit_report(w8, np.array([0]))
        # A lone root: each of its 4 incident edges is a cut edge and
        # retains exactly 1/4 (the first annotation of Figure 2).
        assert math.isclose(rep.retained_on_targets, 1.0)
        assert len(rep.per_target) == 4
        assert all(math.isclose(v, 0.25) for v in rep.per_target.values())

    def test_figure2_single_source_ladder(self):
        """The exact fractions of Figure 2 from u's distribution alone:
        1/4, 1/8, 1/16 on the cut edges off the chain."""
        w8 = wrapped_butterfly(8)
        tree = down_tree(w8, 0, 0)
        chain = [int(d[0]) for d in tree.depths]
        members = np.array(chain[:-1])
        per_edge, leaked = single_source_edge_credit(w8, members, chain[0])
        for depth in range(1, tree.depth + 1):
            parent = chain[depth - 1]
            off = int(tree.depths[depth][1])
            key = (min(parent, off), max(parent, off))
            assert math.isclose(per_edge[key], 0.5 / 2 ** depth)
        # Both trees' leaf edges inside A leak 1/16 each.
        assert math.isclose(leaked, 2 / 16)

    def test_figure2_chain(self):
        """The full Figure 2 configuration: a chain of A nodes down one
        column path; the first cut edges see 1/4, then 1/8, 1/16, ..."""
        w8 = wrapped_butterfly(8)
        tree = down_tree(w8, 0, 0)
        chain = [int(d[0]) for d in tree.depths]  # straight path, depth lg
        members = np.array(chain[:-1])  # leaf (= root level again) excluded
        rep = edge_credit_report(w8, members)
        # The root's down-tree: the cross edge at depth 1 retains 1/4, the
        # cross edge at depth 2 retains 1/8, at depth 3 the two tree edges
        # retain 1/16 each (Figure 2's annotation).
        root_cross = (min(chain[0], int(tree.depths[1][1])),
                      max(chain[0], int(tree.depths[1][1])))
        assert rep.per_target[root_cross] >= 0.25 - 1e-12
        rep.check()


class TestConservation:
    @given(st.integers(0, 300), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_wn_edge_conservation(self, seed, k):
        w = wrapped_butterfly(16)
        rng = np.random.default_rng(seed)
        members = rng.choice(w.num_nodes, size=min(k, w.num_nodes), replace=False)
        rep = edge_credit_report(w, members)
        assert math.isclose(rep.retained_on_targets + rep.leaked, rep.k)

    @given(st.integers(0, 300), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_bn_node_conservation(self, seed, k):
        b = butterfly(16)
        rng = np.random.default_rng(seed)
        members = rng.choice(b.num_nodes, size=min(k, b.num_nodes), replace=False)
        rep = node_credit_report(b, members)
        assert math.isclose(rep.retained_on_targets + rep.leaked, rep.k)


class TestCapsAndBounds:
    @given(st.integers(0, 200), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_wn_edge_caps_and_bound(self, seed, k):
        """Per-edge cap (⌊log k⌋+1)/4 and bound <= true capacity."""
        w = wrapped_butterfly(32)
        rng = np.random.default_rng(seed)
        members = rng.choice(w.num_nodes, size=k, replace=False)
        rep = edge_credit_report(w, members)
        rep.check()
        assert rep.lower_bound <= rep.true_value + 1e-9

    @given(st.integers(0, 200), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_bn_edge_caps_and_bound(self, seed, k):
        b = butterfly(64)  # k = o(sqrt n) regime
        rng = np.random.default_rng(seed)
        members = rng.choice(b.num_nodes, size=k, replace=False)
        rep = edge_credit_report(b, members)
        rep.check()

    @given(st.integers(0, 200), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_wn_node_caps_and_bound(self, seed, k):
        w = wrapped_butterfly(32)
        rng = np.random.default_rng(seed)
        members = rng.choice(w.num_nodes, size=k, replace=False)
        rep = node_credit_report(w, members)
        rep.check()
        assert rep.lower_bound <= rep.true_value + 1e-9

    def test_leak_bound_structured_set(self):
        """Lemma 4.2's leak bound: at most k^2/n credit leaks."""
        w = wrapped_butterfly(64)
        from repro.expansion import sub_butterfly_set

        members = sub_butterfly_set(w, 2)
        rep = edge_credit_report(w, members)
        k = rep.k
        assert rep.leaked <= k * k / w.n + 1e-9

    def test_single_node_edge_cases(self):
        w = wrapped_butterfly(16)
        rep = edge_credit_report(w, np.array([0]))
        rep.check()
        assert math.isclose(rep.retained_on_targets, 1.0)  # degree-4, isolated

    def test_bound_quality_on_tight_sets(self):
        """For the Lemma 4.1 witness the certified bound comes within the
        lemma's factor of the true capacity."""
        from repro.expansion import sub_butterfly_set

        w = wrapped_butterfly(64)
        members = sub_butterfly_set(w, 2)
        rep = edge_credit_report(w, members)
        assert rep.lower_bound >= rep.true_value / 3.0  # generous factor
