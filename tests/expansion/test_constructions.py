"""Section 4 witness sets (Lemmas 4.1, 4.4, 4.7, 4.10)."""

import numpy as np
import pytest

from repro.expansion import (
    bn_edge_witness,
    bn_node_witness,
    edge_expansion_profile,
    node_expansion_exact,
    sub_butterfly_set,
    wn_edge_witness,
    wn_node_witness,
)
from repro.topology import butterfly, wrapped_butterfly


class TestSubButterflySet:
    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_size(self, w16, d):
        assert len(sub_butterfly_set(w16, d)) == (d + 1) << d

    def test_induced_structure(self, b16):
        """The set induces a butterfly of the right dimension."""
        members = sub_butterfly_set(b16, 2)
        sub = b16.subgraph(members)
        small = butterfly(4)
        assert sub.num_edges == small.num_edges
        assert len(sub.connected_components()) == 1

    def test_start_level_offsets(self, b16):
        members = sub_butterfly_set(b16, 1, start_level=2)
        assert set(b16.level_of(members).tolist()) == {2, 3}

    def test_wrapped_window_wraps(self, w8):
        members = sub_butterfly_set(w8, 1, start_level=2)
        assert set(w8.level_of(members).tolist()) == {2, 0}

    def test_dimension_caps(self, w8):
        with pytest.raises(ValueError):
            sub_butterfly_set(w8, 3)  # d <= log n - 1 for Wn
        with pytest.raises(ValueError):
            sub_butterfly_set(butterfly(8), 2, start_level=2)


class TestWnWitnesses:
    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_edge_witness_value(self, d):
        w = wrapped_butterfly(32)
        members, cap = wn_edge_witness(w, d)
        assert cap == 4 << d

    def test_edge_witness_is_exact_at_small_sizes(self, w8):
        """On W8 the d=1 witness achieves the exact EE value."""
        members, cap = wn_edge_witness(w8, 1)
        prof = edge_expansion_profile(w8)
        assert cap == prof[len(members)]

    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_node_witness_value(self, d):
        w = wrapped_butterfly(64)
        members, ne = wn_node_witness(w, d)
        assert ne == 3 << (d + 1)

    def test_node_witness_needs_room(self, w8):
        with pytest.raises(ValueError):
            wn_node_witness(w8, 2)

    def test_wrong_family_rejected(self, b8):
        with pytest.raises(ValueError):
            wn_edge_witness(b8, 1)


class TestBnWitnesses:
    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_edge_witness_value(self, d):
        b = butterfly(32)
        members, cap = bn_edge_witness(b, d)
        assert cap == 2 << d

    def test_edge_witness_is_exact_on_b8(self, b8):
        """Lemma 4.7's witness achieves EE(B8, k) exactly for d = 1."""
        members, cap = bn_edge_witness(b8, 1)
        prof = edge_expansion_profile(b8)
        assert cap == prof[len(members)]

    @pytest.mark.parametrize("d", [0, 1, 2])
    def test_node_witness_value(self, d):
        b = butterfly(64)
        members, ne = bn_node_witness(b, d)
        assert ne == 2 << d

    def test_node_witness_beats_generic_sets(self):
        """The output-anchored twins have far fewer neighbors than random
        sets of the same size — the content of Lemma 4.10."""
        b = butterfly(32)
        members, ne = bn_node_witness(b, 1)
        rng = np.random.default_rng(0)
        rand = rng.choice(b.num_nodes, size=len(members), replace=False)
        assert ne < len(b.neighborhood(rand))

    def test_wrong_family_rejected(self, w8):
        with pytest.raises(ValueError):
            bn_edge_witness(w8, 1)


class TestWitnessesAgainstExact:
    def test_bn_node_witness_optimal_small(self, b8):
        """For B8, k = 4 (d = 0 twins): NE witness equals the exact NE."""
        members, ne = bn_node_witness(b8, 0)
        exact, _ = node_expansion_exact(b8, len(members))
        assert ne == exact

    def test_upper_bounds_dominate_exact(self, w8):
        prof = edge_expansion_profile(w8)
        for d in (0, 1):
            members, cap = wn_edge_witness(w8, d)
            assert prof[len(members)] <= cap
