"""Adversarial properties: brute force vs the expansion layer.

Independent ground truth here is a deliberately naive Python sweep over
explicit subsets — no layered DP, no bitmask batching, no credit
propagation.  Anything the fast paths disagree with it on is a bug.
"""

import numpy as np
import pytest

from repro.expansion import (
    edge_credit_report,
    edge_expansion_of_set,
    edge_expansion_profile,
    ee_bn_lower,
    ee_wn_lower,
    ne_bn_lower,
    ne_wn_lower,
    node_credit_report,
    node_expansion_of_set,
    node_expansion_profile,
)
from repro.topology import butterfly, wrapped_butterfly


def _brute_ee(net):
    """min C(S, S̄) per |S| over *all* subsets, one edge at a time."""
    n = net.num_nodes
    edges = [(int(u), int(v)) for u, v in net.edges]
    best = [len(edges) + 1] * (n + 1)
    best[0] = best[n] = 0
    for mask in range(1 << n):
        cap = sum(
            1 for u, v in edges if ((mask >> u) & 1) != ((mask >> v) & 1)
        )
        k = mask.bit_count()
        if cap < best[k]:
            best[k] = cap
    return best


def _brute_ne(net):
    """min |N(S)| per |S| over all nonempty subsets, via adjacency sets."""
    n = net.num_nodes
    adj = [set() for _ in range(n)]
    for u, v in net.edges:
        adj[int(u)].add(int(v))
        adj[int(v)].add(int(u))
    best = [n + 1] * (n + 1)
    best[0] = 0
    for mask in range(1, 1 << n):
        members = [v for v in range(n) if (mask >> v) & 1]
        neigh = set()
        for v in members:
            neigh |= adj[v]
        neigh -= set(members)
        k = len(members)
        best[k] = min(best[k], len(neigh))
    return best


@pytest.mark.parametrize("net", [wrapped_butterfly(4), butterfly(4)],
                         ids=lambda net: net.name)
class TestProfilesAgainstBruteForce:
    def test_edge_expansion_profile(self, net):
        assert list(edge_expansion_profile(net)) == _brute_ee(net)

    def test_node_expansion_profile(self, net):
        got = list(node_expansion_profile(net))
        assert got[1:] == _brute_ne(net)[1:]


@pytest.mark.parametrize("net", [wrapped_butterfly(4), butterfly(4)],
                         ids=lambda net: net.name)
class TestSetFunctionsAgainstBruteForce:
    def test_random_sets(self, net):
        n = net.num_nodes
        edges = [(int(u), int(v)) for u, v in net.edges]
        rng = np.random.default_rng(42)
        for _ in range(40):
            k = int(rng.integers(1, n))
            members = rng.choice(n, size=k, replace=False)
            in_s = set(int(v) for v in members)
            cap = sum(1 for u, v in edges if (u in in_s) != (v in in_s))
            assert edge_expansion_of_set(net, members) == cap
            neigh = set()
            for u, v in edges:
                if u in in_s and v not in in_s:
                    neigh.add(v)
                if v in in_s and u not in in_s:
                    neigh.add(u)
            assert node_expansion_of_set(net, members) == len(neigh)


class TestPaperBoundsAgainstExactValues:
    """The Section 4 curves must sit below the true profiles everywhere."""

    @pytest.mark.parametrize("lg", [4, 8])
    def test_wn_curves(self, lg):
        w = wrapped_butterfly(lg)
        ee = edge_expansion_profile(w)
        ne = node_expansion_profile(w) if w.num_nodes <= 16 else None
        for k in range(1, w.num_nodes):
            assert ee_wn_lower(k, w.num_nodes) <= ee[k] + 1e-9
            if ne is not None:
                assert ne_wn_lower(k, w.num_nodes) <= ne[k] + 1e-9

    @pytest.mark.parametrize("lg", [4, 8])
    def test_bn_curves(self, lg):
        b = butterfly(lg)
        ee = edge_expansion_profile(b)
        ne = node_expansion_profile(b) if b.num_nodes <= 16 else None
        for k in range(1, b.num_nodes):
            assert ee_bn_lower(k, b.num_nodes) <= ee[k] + 1e-9
            if ne is not None:
                assert ne_bn_lower(k, b.num_nodes) <= ne[k] + 1e-9


# (network, max k) pairs inside each lemma's regime: k = o(n) for Wn,
# k = o(sqrt n) for Bn — outside it the per-target caps legitimately fail.
_CREDIT_REGIMES = [(wrapped_butterfly(16), 10), (wrapped_butterfly(32), 12),
                   (butterfly(16), 4), (butterfly(64), 5)]


@pytest.mark.parametrize("bf,kmax", _CREDIT_REGIMES,
                         ids=lambda p: getattr(p, "name", p))
class TestCreditSchemesOnRandomSets:
    """Lemmas 4.2/4.5 (Wn) and 4.8/4.11 (Bn) on seeded adversarial k-sets."""

    def test_edge_scheme_accounts_exactly(self, bf, kmax):
        rng = np.random.default_rng(7)
        for _ in range(25):
            k = int(rng.integers(2, kmax + 1))
            members = rng.choice(bf.num_nodes, size=k, replace=False)
            rep = edge_credit_report(bf, members)
            rep.check()
            assert rep.true_value == edge_expansion_of_set(bf, members)
            assert rep.lower_bound <= rep.true_value + 1e-9

    def test_node_scheme_accounts_exactly(self, bf, kmax):
        rng = np.random.default_rng(8)
        for _ in range(25):
            k = int(rng.integers(2, kmax + 1))
            members = rng.choice(bf.num_nodes, size=k, replace=False)
            rep = node_credit_report(bf, members)
            rep.check()
            assert rep.true_value == node_expansion_of_set(bf, members)
