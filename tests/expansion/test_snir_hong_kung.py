"""Section 1.6's related bounds: Snir's Ω_n and Hong–Kung's FFT_n."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.expansion.hong_kung import (
    check_hong_kung,
    hong_kung_inequality_holds,
    min_dominator_size,
)
from repro.expansion.snir import (
    omega_expansion_of_set,
    omega_expansion_profile,
    omega_network,
    snir_inequality_holds,
)
from repro.topology import butterfly


class TestOmegaNetwork:
    def test_built_on_half_butterfly(self):
        bf = omega_network(16)
        assert bf.n == 8

    def test_rejects_odd(self):
        with pytest.raises(ValueError):
            omega_network(7)

    def test_ports_counted(self):
        bf = omega_network(8)  # B4
        # A single input node: degree 2 + 2 ports = 4.
        assert omega_expansion_of_set(bf, np.array([bf.node(0, 0)])) == 4
        # A single interior node: degree 4, no ports.
        assert omega_expansion_of_set(bf, np.array([bf.node(0, 1)])) == 4

    def test_full_set_keeps_ports(self):
        """The ported expansion of the whole of Ω_n never vanishes — the
        contrast with EE(Wn, |Wn|) = 0 the paper draws in Section 1.6.
        With m = n/2 columns it equals 4m (2 ports at each of the 2m
        boundary nodes)."""
        bf = omega_network(8)  # built on B4: m = 4
        all_nodes = np.arange(bf.num_nodes)
        assert omega_expansion_of_set(bf, all_nodes) == 4 * 4


class TestSnirInequality:
    def test_profile_matches_set_evaluation(self):
        bf = omega_network(8)
        prof = omega_expansion_profile(bf)
        # Spot-check: the k=1 minimum is over single nodes.
        singles = min(
            omega_expansion_of_set(bf, np.array([v])) for v in range(bf.num_nodes)
        )
        assert prof[1] == singles

    def test_snir_holds_for_every_k(self):
        """C log C >= 4k for the exact minimizers — Snir's theorem on Ω_8."""
        bf = omega_network(8)
        prof = omega_expansion_profile(bf)
        for k in range(1, bf.num_nodes + 1):
            assert snir_inequality_holds(int(prof[k]), k), (k, prof[k])

    @given(st.integers(0, 400), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_snir_holds_on_random_sets(self, seed, k):
        bf = omega_network(16)  # B8, 32 nodes
        rng = np.random.default_rng(seed)
        members = rng.choice(bf.num_nodes, size=k, replace=False)
        c = omega_expansion_of_set(bf, members)
        assert snir_inequality_holds(c, k)

    def test_inequality_edge_cases(self):
        assert snir_inequality_holds(0, 0)
        assert not snir_inequality_holds(1, 1)
        assert snir_inequality_holds(4, 2)


class TestHongKung:
    def test_single_interior_node(self, b8):
        """One node at level i is dominated by itself (D = {v})."""
        v = b8.node(0, 2)
        d = min_dominator_size(b8, np.array([v]))
        assert d == 1

    def test_input_nodes_force_themselves(self, b8):
        members = b8.inputs()[:3]
        assert min_dominator_size(b8, members) == 3

    def test_output_anchored_subbutterfly(self, b8):
        """The Lemma 4.10-style set: k nodes behind 2^d inputs of a
        sub-butterfly are dominated by far fewer nodes."""
        from repro.expansion import sub_butterfly_set

        members = sub_butterfly_set(b8, 2, start_level=1)
        d = min_dominator_size(b8, members)
        k = len(members)
        assert d < k
        assert hong_kung_inequality_holds(k, d)

    @given(st.integers(0, 400), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_hong_kung_on_random_sets(self, seed, k):
        bf = butterfly(8)
        rng = np.random.default_rng(seed)
        members = rng.choice(bf.num_nodes, size=k, replace=False)
        holds, d = check_hong_kung(bf, members)
        assert holds, (k, d)

    def test_whole_network(self, b8):
        """S = everything: D must contain all inputs; k = N satisfies the
        bound with |D| = n."""
        members = np.arange(b8.num_nodes)
        d = min_dominator_size(b8, members)
        assert d == 8
        assert hong_kung_inequality_holds(b8.num_nodes, d)

    def test_rejects_wrapped(self, w8):
        with pytest.raises(ValueError):
            min_dominator_size(w8, np.array([0]))
