"""Exact expansion functions."""

import numpy as np
import pytest

from repro.expansion import (
    edge_expansion,
    edge_expansion_of_set,
    edge_expansion_profile,
    node_expansion_exact,
    node_expansion_of_set,
    node_expansion_search,
)
from repro.topology import Network, butterfly, wrapped_butterfly


class TestEdgeExpansion:
    def test_profile_matches_enumeration(self, b4):
        from repro.cuts import cut_profile

        assert np.array_equal(edge_expansion_profile(b4), cut_profile(b4).values)

    def test_single_value(self, b4):
        assert edge_expansion(b4, 1) == 2  # an input node has degree 2

    def test_k_bounds(self, b4):
        with pytest.raises(ValueError):
            edge_expansion(b4, 99)

    def test_of_set_matches_capacity(self, b8, rng):
        members = rng.choice(32, size=10, replace=False)
        side = np.zeros(32, dtype=bool)
        side[members] = True
        assert edge_expansion_of_set(b8, members) == b8.cut_capacity(side)

    def test_non_layered_fallback(self):
        net = Network(range(6), [(i, (i + 1) % 6) for i in range(6)])
        prof = edge_expansion_profile(net)
        assert prof[2] == 2  # arc of a cycle

    def test_ee_wn_values_from_paper_shape(self, w8):
        """EE(W8, k) should sit between the Lemma 4.2 lower curve and the
        Lemma 4.1 witnesses (sanity of the whole Section 4 story)."""
        from repro.expansion import ee_wn_lower

        prof = edge_expansion_profile(w8)
        for k in range(1, 12):
            assert prof[k] >= ee_wn_lower(k, 8) - 1e-9


class TestNodeExpansion:
    def test_exact_matches_brute_force(self, b4):
        from itertools import combinations

        for k in (1, 2, 3):
            val, wit = node_expansion_exact(b4, k)
            brute = min(
                len(b4.neighborhood(np.array(c)))
                for c in combinations(range(b4.num_nodes), k)
            )
            assert val == brute
            assert node_expansion_of_set(b4, wit) == val

    def test_witness_has_size_k(self, w8):
        val, wit = node_expansion_exact(w8, 3)
        assert len(wit) == 3

    def test_enumeration_limit(self):
        big = wrapped_butterfly(64)
        with pytest.raises(ValueError, match="exceed"):
            node_expansion_exact(big, 20)

    def test_search_upper_bounds_exact(self, w8):
        for k in (2, 4, 6):
            exact, _ = node_expansion_exact(w8, k)
            found, wit = node_expansion_search(w8, k, iters=500, restarts=4)
            assert found >= exact
            assert len(wit) == k
            assert node_expansion_of_set(w8, wit) == found

    def test_search_finds_structured_sets(self):
        """On W16 with k = 8 the search should get close to a sub-butterfly."""
        w16 = wrapped_butterfly(16)
        found, _ = node_expansion_search(w16, 6, iters=3000, restarts=6, seed=3)
        assert found <= 12  # loose sanity ceiling


class TestNodeExpansionProfile:
    def test_matches_pointwise_exact(self, b4):
        from repro.expansion import node_expansion_profile

        prof = node_expansion_profile(b4)
        for k in range(1, b4.num_nodes):
            v, _ = node_expansion_exact(b4, k)
            assert prof[k] == v

    def test_endpoints(self, b4):
        from repro.expansion import node_expansion_profile

        prof = node_expansion_profile(b4)
        assert prof[0] == 0
        assert prof[b4.num_nodes] == 0  # the full set has no neighbors

    @pytest.mark.slow
    def test_w8_full_profile(self, w8):
        """Exact NE(W8, k) at every k — the Section 4.3 row, complete."""
        from repro.expansion import node_expansion_profile
        from repro.expansion import ne_wn_lower

        prof = node_expansion_profile(w8)
        assert prof[1:13].tolist() == [4, 5, 6, 6, 7, 8, 8, 8, 8, 8, 8, 7]
        for k in range(1, w8.num_nodes):
            assert prof[k] >= ne_wn_lower(k, 8) - 1e-9

    def test_size_limit(self, b8):
        from repro.expansion import node_expansion_profile

        with pytest.raises(ValueError, match="limited"):
            node_expansion_profile(b8)
