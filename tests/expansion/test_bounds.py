"""Closed-form bound curves (Section 4.3)."""

import math

import pytest

from repro.expansion import (
    ee_bn_lower,
    ee_wn_lower,
    k_over_log_k,
    ne_bn_lower,
    ne_wn_lower,
    ee_wn_upper_coeff,
    ne_wn_upper_coeff,
    ee_bn_upper_coeff,
    ne_bn_upper_coeff,
)


class TestReferenceCurve:
    def test_small_k(self):
        assert k_over_log_k(1) == pytest.approx(1.0)
        assert k_over_log_k(2) == pytest.approx(2.0)

    def test_growth(self):
        assert k_over_log_k(1024) == pytest.approx(102.4)


class TestLowerCurves:
    def test_zero_at_k_zero(self):
        for fn in (ee_wn_lower, ne_wn_lower, ee_bn_lower, ne_bn_lower):
            assert fn(0, 64) == 0.0  # repro-lint: disable=RL004 -- curves return literal 0.0 at k=0 by construction

    def test_ordering_of_constants(self):
        """EE(Wn) curve is about twice EE(Bn)'s, which is about 4x NE(Bn)'s —
        the 4 : 2 : 1 : 1/2 layout of the paper's table."""
        n, k = 1 << 40, 64  # n huge so both leak factors are ~1
        assert ee_wn_lower(k, n) == pytest.approx(2 * ee_bn_lower(k, n), rel=0.01)
        assert ee_bn_lower(k, n) == pytest.approx(4 * ne_bn_lower(k, n), rel=0.2)

    def test_asymptotic_coefficients(self):
        """As n -> inf with k fixed, the curves approach c * k/(⌊log k⌋+1)."""
        n = 1 << 40
        k = 256
        assert ee_wn_lower(k, n) == pytest.approx(4 * k / 9, rel=1e-3)
        assert ee_bn_lower(k, n) == pytest.approx(2 * k / 9, rel=1e-3)

    def test_vanish_when_k_too_large(self):
        """Outside the o(n) / o(sqrt n) regimes the finite forms go to 0 —
        they never overclaim."""
        assert ee_wn_lower(64, 64) == 0.0  # repro-lint: disable=RL004 -- out-of-regime guard returns literal 0.0
        assert ee_bn_lower(8, 64) == 0.0  # repro-lint: disable=RL004 -- out-of-regime guard returns literal 0.0

    def test_upper_coeffs(self):
        assert (ee_wn_upper_coeff(), ne_wn_upper_coeff()) == (4.0, 3.0)
        assert (ee_bn_upper_coeff(), ne_bn_upper_coeff()) == (2.0, 1.0)


class TestSandwich:
    def test_lower_below_upper_everywhere(self):
        """The finite lower curves sit below c_upper * k/log k."""
        n = 1 << 16
        for k in range(2, 200):
            ref = k_over_log_k(k)
            assert ee_wn_lower(k, n) <= 4 * ref + 1e-9
            assert ee_bn_lower(k, n) <= 2 * ref + 1e-9
            assert ne_wn_lower(k, n) <= 3 * ref + 1e-9
            assert ne_bn_lower(k, n) <= 1 * ref + 1e-9
