"""Serving conformance: the API and the CLI are the same solver.

Every corpus instance submitted through ``POST /v1/solve`` must come
back byte-identical to what ``repro-butterfly solve --certificate``
would have written for that instance, and ``repro-butterfly verify``
must exit 0 on the served body.  The conformance server runs with the
tier-0 cache *disabled*: the corpus deliberately contains isomorphic
duplicates (three pristine ``B4`` rebuilds, fault-injected twins), and
a shared cache would answer the later ones from the earlier ones'
certificates — correct, verified, but carrying the first solver's
evidence strings rather than a cold solve's.  Cached serving is covered
by the queue and server suites; *this* suite pins the request → solve →
serialize pipeline itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.fallback import solve_with_fallback
from repro.serve import JobQueue, ServeClient, ServeServer
from repro.verify.fuzz import load_case
from repro.verify.serialize import write_certificate

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
CASES = sorted(CORPUS_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def server():
    srv = ServeServer(JobQueue(cache_dir=None), port=0).start()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.host, server.port)


@pytest.mark.parametrize("path", CASES, ids=[p.stem for p in CASES])
def test_served_certificate_matches_cli_bytes(path, client, tmp_path):
    case = load_case(path)
    accepted, status = client.solve_and_wait(case.spec, wait=120)
    assert status["state"] == "done", status
    served = client.result_text(accepted["job"])

    net = case.network()
    cli_path = write_certificate(
        tmp_path / "cli-cert.json", net, solve_with_fallback(net, cache=None)
    )
    assert served == cli_path.read_text(encoding="utf-8")

    served_path = tmp_path / "served-cert.json"
    served_path.write_text(served, encoding="utf-8")
    assert cli_main(["verify", str(served_path)]) == 0


def test_corpus_is_not_empty():
    assert len(CASES) >= 20
