"""Queue semantics under load: dedup, orbit holdback, degradation.

The load-bearing claims of the serving layer, asserted at the queue
level where they are deterministic: concurrent clients on one
fingerprint trigger exactly one solve (counted via ``serve.*`` and
``perf.cache.*``), isomorphic requests serialize onto the warm cache,
and a request whose budget expires while queued still settles with a
certified bound — never an error.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import collecting
from repro.serve.jobs import DONE, FAILED
from repro.serve.queue import JobQueue
from repro.topology import butterfly, torus
from repro.verify.serialize import network_spec


def _submit(queue, net, *, timeout=None):
    return queue.submit(network_spec(net), net, timeout=timeout)


class TestDedup:
    def test_concurrent_clients_one_fingerprint_one_solve(self, tmp_path):
        """Five clients, one instance, exactly one solver execution."""
        net = butterfly(4)
        queue = JobQueue(cache_dir=str(tmp_path / "cache"))
        with collecting() as col:
            # Pile the requests up before the drain thread exists: all
            # five are concurrent from the queue's point of view.
            jobs = [_submit(queue, net) for _ in range(5)]
            first, deduped0 = jobs[0]
            assert deduped0 is False
            assert all(job is first for job, _ in jobs)
            assert all(dup for _, dup in jobs[1:])
            assert first.clients == 5
            queue.start()
            assert queue.wait(first.id, timeout=60).state == DONE
            queue.stop()
            counters = col.counters
        assert counters["serve.requests"] == 5
        assert counters["serve.dedup_hits"] == 4
        assert counters["serve.solves"] == 1
        # One cold solve: two lookups missed, profile + certificate stored.
        assert counters["perf.cache.miss"] == 2
        assert counters["perf.cache.store"] == 2
        assert "perf.cache.hit" not in counters

    def test_finished_job_is_not_attached_to(self, tmp_path):
        """Dedup is in-flight only: a re-request after completion is a
        fresh job (which the cache then answers as tier-0)."""
        net = butterfly(4)
        queue = JobQueue(cache_dir=str(tmp_path / "cache"))
        with collecting() as col:
            queue.start()
            job1, _ = _submit(queue, net)
            queue.wait(job1.id, timeout=60)
            job2, deduped = _submit(queue, net)
            assert job2.id != job1.id and deduped is False
            queue.wait(job2.id, timeout=60)
            queue.stop()
            assert job2.tier == "tier-0"
            assert col.counters["perf.cache.hit"] >= 1

    def test_orbit_holdback_serializes_isomorphs(self, tmp_path):
        """Torus(3,4) and Torus(4,3) share a fingerprint but need their
        own certificates: two jobs, the second held back onto the warm
        cache — one real solve, one tier-0 hit."""
        a, b = torus(3, 4), torus(4, 3)
        queue = JobQueue(cache_dir=str(tmp_path / "cache"))
        with collecting() as col:
            ja, da = _submit(queue, a)
            jb, db = _submit(queue, b)
            assert da is db is False and ja.id != jb.id
            assert ja.key == jb.key
            queue.start()
            assert queue.wait(ja.id, timeout=60).state == DONE
            assert queue.wait(jb.id, timeout=60).state == DONE
            queue.stop()
            counters = col.counters
        assert counters["serve.orbit_deferrals"] >= 1
        assert counters["perf.cache.hit"] >= 1
        assert ja.tier == "tier-1" and jb.tier == "tier-0"
        # Each certificate embeds its *own* instance's spec.
        assert ja.certificate["network"]["edge_digest"] == a.edge_digest
        assert jb.certificate["network"]["edge_digest"] == b.edge_digest


class TestDegradation:
    def test_budget_expired_mid_queue_still_certifies(self, tmp_path):
        """A request that waits out its whole budget in the queue gets
        the certified trivial interval, not a failure."""
        t = [0.0]
        queue = JobQueue(cache_dir=str(tmp_path / "cache"), clock=lambda: t[0])
        net = butterfly(4)
        job, _ = _submit(queue, net, timeout=5.0)
        assert math.isclose(job.deadline, 5.0, rel_tol=0.0, abs_tol=0.0)
        t[0] = 60.0  # the queue sat on it long past the deadline
        queue.start()
        settled = queue.wait(job.id, timeout=120)
        queue.stop()
        assert settled.state == DONE
        data = settled.certificate
        assert data["lower"] == 0 and data["upper"] == net.num_edges
        assert "tier-5" in data["upper_evidence"]
        assert settled.exact is False

    def test_live_budget_passes_remaining_time(self, tmp_path):
        t = [100.0]
        queue = JobQueue(cache_dir=None, clock=lambda: t[0])
        job, _ = _submit(queue, butterfly(4), timeout=30.0)
        t[0] = 110.0  # 20 s of budget left at execution
        queue.start()
        settled = queue.wait(job.id, timeout=120)
        queue.stop()
        assert settled.state == DONE and settled.exact is True

    def test_solver_error_fails_job_not_drain_thread(self, tmp_path):
        """A poisoned task settles as FAILED; the queue keeps serving."""
        queue = JobQueue(cache_dir=None)
        net = butterfly(4)
        bad, _ = queue.submit({"family": "nope"}, net)
        queue.start()
        assert queue.wait(bad.id, timeout=60).state == FAILED
        assert "ValueError" in bad.error
        # The drain thread survived: later work still completes.
        ok, _ = _submit(queue, torus(3, 3))
        assert queue.wait(ok.id, timeout=60).state == DONE
        queue.stop()


class TestLifecycle:
    def test_stop_drains_backlog(self):
        queue = JobQueue(cache_dir=None)
        jobs = [_submit(queue, butterfly(4))[0], _submit(queue, torus(3, 3))[0]]
        queue.start()
        queue.stop()
        assert all(j.state == DONE for j in jobs)

    def test_closed_queue_refuses_submission(self):
        queue = JobQueue(cache_dir=None)
        queue.start()
        queue.stop()
        with pytest.raises(RuntimeError, match="closed"):
            _submit(queue, butterfly(4))

    def test_unknown_job_lookups(self):
        queue = JobQueue(cache_dir=None)
        assert queue.get("job-nope") is None
        assert queue.wait("job-nope", timeout=0.1) is None
