"""Request parsing and the solve task: the API's front-door contracts.

``parse_request`` must reject everything malformed with a
:class:`RequestError` (the server's 400) and normalize everything valid
through the certificate-file spec round trip; ``solve_job`` must never
raise — the serial drain path runs it in the queue thread — and must
certify even a zero budget.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.serve.jobs import RequestError, parse_request, solve_job
from repro.topology import butterfly, torus
from repro.verify.checker import check_certificate
from repro.verify.serialize import network_from_spec, network_spec


class TestParseRequest:
    def test_bare_spec(self):
        spec, net, timeout = parse_request(
            json.dumps({"family": "bn", "params": {"n": 4}})
        )
        assert net.edge_digest == butterfly(4).edge_digest
        assert timeout is None
        # Normalized: the returned spec carries the digest.
        assert spec == network_spec(net)

    def test_enveloped_spec_with_timeout(self):
        body = {"network": {"family": "torus", "params": {"sides": [3, 4]}},
                "timeout": 2.5}
        spec, net, timeout = parse_request(json.dumps(body))
        assert net.num_nodes == 12
        assert math.isclose(timeout, 2.5, rel_tol=0.0, abs_tol=0.0)

    def test_default_timeout_applies(self):
        _, _, timeout = parse_request(
            json.dumps({"family": "bn", "params": {"n": 4}}), default_timeout=7.0
        )
        assert math.isclose(timeout, 7.0, rel_tol=0.0, abs_tol=0.0)

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[1, 2]",
            json.dumps({"network": "bn4"}).encode(),
            json.dumps({"family": "nope"}).encode(),
            json.dumps({"family": "bn", "params": {}}).encode(),
            json.dumps({"network": {"family": "bn", "params": {"n": 4}},
                        "timeout": -1}).encode(),
            json.dumps({"network": {"family": "bn", "params": {"n": 4}},
                        "timeout": True}).encode(),
            json.dumps({"family": "bn", "params": {"n": 4},
                        "edge_digest": "0" * 64}).encode(),
        ],
        ids=["not-json", "not-object", "network-not-object", "bad-family",
             "missing-params", "negative-timeout", "bool-timeout",
             "digest-drift"],
    )
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(RequestError):
            parse_request(body)

    def test_max_nodes_policy(self):
        body = json.dumps({"family": "bn", "params": {"n": 8}})
        with pytest.raises(RequestError, match="at most 16"):
            parse_request(body, max_nodes=16)
        parse_request(body, max_nodes=32)  # 8 * lg(8)+1 = 32 nodes: allowed


class TestSolveJob:
    def test_success_returns_verifiable_certificate(self):
        net = torus(3, 4)
        out = solve_job({"spec": network_spec(net), "cache": None,
                         "budget_seconds": None})
        assert out["exact"] is True and out["tier"] == "tier-1"
        data = out["certificate"]
        assert data["format"] == "repro-certificate/1"
        rebuilt = network_from_spec(data["network"])
        fields = {k: data[k] for k in
                  ("quantity", "lower", "upper", "lower_evidence", "upper_evidence")}
        bits = data["witness"]
        fields["witness_side"] = np.array([b == "1" for b in bits])
        check_certificate(rebuilt, fields).raise_for_problems()

    def test_zero_budget_still_certifies(self):
        """An expired budget degrades to tier-5, never to an error."""
        net = butterfly(4)
        out = solve_job({"spec": network_spec(net), "cache": None,
                         "budget_seconds": 0.0})
        data = out["certificate"]
        assert data["lower"] == 0 and data["upper"] == net.num_edges
        assert "tier-5" in data["upper_evidence"]
        assert out["exact"] is False

    def test_errors_are_data_not_raises(self):
        out = solve_job({"spec": {"family": "nope"}, "cache": None})
        assert "certificate" not in out
        assert "ValueError" in out["error"]
        out = solve_job({})  # no spec at all
        assert "error" in out
