"""HTTP surface of the serving API: routes, status codes, telemetry.

Each test runs a real listener on a loopback port and talks to it with
the stdlib client — no mocked transport, the same bytes CI's smoke mix
sends.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import load_timeline, validate_timeline
from repro.serve import JobQueue, ServeClient, ServeError, ServeServer
from repro.topology import torus

BN4 = {"family": "bn", "params": {"n": 4}}
TORUS34 = {"family": "torus", "params": {"sides": [3, 4]}}
TORUS43 = {"family": "torus", "params": {"sides": [4, 3]}}


@pytest.fixture()
def server(tmp_path):
    srv = ServeServer(
        JobQueue(cache_dir=str(tmp_path / "cache")), port=0
    ).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.host, server.port)


class TestRoutes:
    def test_healthz(self, client, server):
        body = client.healthz()
        assert body["ok"] is True and body["run_id"] == server.run_id

    def test_solve_roundtrip(self, client):
        accepted, status = client.solve_and_wait(BN4, wait=60)
        assert accepted["fingerprint"] == "bf:b4:full"
        assert status["state"] == "done" and status["exact"] is True
        cert = client.result(accepted["job"])
        assert cert["format"] == "repro-certificate/1"
        assert cert["lower"] == cert["upper"]

    def test_malformed_spec_is_400_not_500(self, client):
        status, data = client.request_json(
            "POST", "/v1/solve", {"network": {"family": "nope"}}
        )
        assert status == 400 and "error" in data
        status, _ = client.request("POST", "/v1/solve", body=None)
        assert status == 400

    def test_unknown_job_404(self, client):
        status, _ = client.request_json("GET", "/v1/jobs/job-nope")
        assert status == 404
        status, _ = client.request_json("GET", "/v1/results/job-nope")
        assert status == 404

    def test_wrong_method_405(self, client):
        status, _ = client.request_json("GET", "/v1/solve")
        assert status == 405

    def test_unrouted_path_404(self, client):
        status, _ = client.request_json("GET", "/v2/everything")
        assert status == 404

    def test_result_before_done_409(self, tmp_path):
        queue = JobQueue(cache_dir=None)
        srv = ServeServer(queue, port=0).start(start_queue=False)
        try:
            client = ServeClient(srv.host, srv.port)
            accepted = client.solve(BN4)
            status, data = client.request_json(
                "GET", f"/v1/results/{accepted['job']}"
            )
            assert status == 409 and data["state"] == "queued"
            with pytest.raises(ServeError) as err:
                client.result(accepted["job"])
            assert err.value.status == 409
            queue.start()
        finally:
            srv.stop()

    def test_deduped_flag_over_http(self, tmp_path):
        queue = JobQueue(cache_dir=None)
        srv = ServeServer(queue, port=0).start(start_queue=False)
        try:
            client = ServeClient(srv.host, srv.port)
            first = client.solve(BN4)
            second = client.solve(BN4)
            assert second["deduped"] is True
            assert second["job"] == first["job"]
            queue.start()
            assert client.job(first["job"], wait=60)["state"] == "done"
        finally:
            srv.stop()

    def test_oversized_instance_rejected(self, tmp_path):
        queue = JobQueue(cache_dir=None)
        srv = ServeServer(queue, port=0, max_nodes=8).start()
        try:
            client = ServeClient(srv.host, srv.port)
            status, data = client.request_json(
                "POST", "/v1/solve", {"network": BN4}
            )
            assert status == 400 and "at most 8" in data["error"]
        finally:
            srv.stop()


class TestCertificateBytes:
    def test_result_matches_write_certificate_bytes(self, client, tmp_path):
        """The served body is byte-identical to the CLI's certificate file."""
        from repro.core.fallback import solve_with_fallback
        from repro.verify.serialize import write_certificate

        accepted, _ = client.solve_and_wait(TORUS34, wait=60)
        served = client.result_text(accepted["job"])
        net = torus(3, 4)
        path = write_certificate(
            tmp_path / "cli.json", net, solve_with_fallback(net, cache=None)
        )
        assert served == path.read_text(encoding="utf-8")


class TestMetrics:
    def test_openmetrics_exposition(self, client):
        client.solve_and_wait(BN4, wait=60)
        client.solve_and_wait(BN4, wait=60)  # cache hit
        client.request_json("POST", "/v1/solve", {"network": {"family": "nope"}})
        text = client.metrics()
        assert text.rstrip().endswith("# EOF")
        metrics = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                if "{" not in name:
                    metrics[name] = float(value)
        assert metrics["repro_serve_requests_total"] == 2
        assert metrics["repro_serve_solves_total"] == 2
        assert metrics["repro_serve_rejected_total"] == 1
        assert metrics["repro_perf_cache_hit_total"] >= 1
        assert metrics["repro_serve_queue_depth"] == 0

    def test_content_type(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert "openmetrics-text" in response.getheader("Content-Type")
            response.read()
        finally:
            conn.close()


class TestTelemetry:
    def test_timeline_merges_on_shutdown(self, tmp_path):
        tele = tmp_path / "tele"
        srv = ServeServer(
            JobQueue(cache_dir=str(tmp_path / "cache")),
            port=0,
            telemetry=str(tele),
        ).start()
        client = ServeClient(srv.host, srv.port)
        accepted, _ = client.solve_and_wait(TORUS34, wait=60)
        client.result_text(accepted["job"])
        srv.stop()
        doc = load_timeline(tele / "timeline.json")
        assert validate_timeline(doc) == []
        names = {s["name"] for s in doc["spans"]}
        assert "serve.run" in names
        assert "serve.request" in names
        assert "serve.solve" in names
        assert doc["counters"]["serve.solves"] == 1

    def test_collector_restored_after_stop(self, tmp_path):
        from repro.obs import current

        before = current()
        srv = ServeServer(JobQueue(cache_dir=None), port=0).start()
        assert current() is srv.collector
        srv.stop()
        assert current() is before


class TestOrbitServing:
    def test_axis_rotated_request_is_tier0(self, client):
        _, first = client.solve_and_wait(TORUS34, wait=60)
        accepted, second = client.solve_and_wait(TORUS43, wait=60)
        assert first["tier"] == "tier-1"
        assert second["tier"] == "tier-0"
        # The certificate still names the instance the client asked for.
        cert = client.result(accepted["job"])
        assert cert["network"]["edge_digest"] == torus(4, 3).edge_digest
        assert cert["lower"] == cert["upper"]
